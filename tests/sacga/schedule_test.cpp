#include "sacga/schedule.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::sacga {
namespace {

ScheduleParams default_params() {
  ScheduleParams p;
  p.k1 = 0.05;
  p.k2 = 2.0;
  p.k3 = 1.0;
  p.alpha = 1.0;
  p.t_init = 100.0;
  p.n = 5;
  p.span = 100;
  return p;
}

TEST(Schedule, ValidatesParameters) {
  ScheduleParams p = default_params();
  p.k1 = 0.0;
  EXPECT_THROW(AnnealingSchedule{p}, PreconditionError);
  p = default_params();
  p.alpha = -1.0;
  EXPECT_THROW(AnnealingSchedule{p}, PreconditionError);
  p = default_params();
  p.t_init = 1.0;
  EXPECT_THROW(AnnealingSchedule{p}, PreconditionError);
  p = default_params();
  p.n = 1;
  EXPECT_THROW(AnnealingSchedule{p}, PreconditionError);
  p = default_params();
  p.span = 0;
  EXPECT_THROW(AnnealingSchedule{p}, PreconditionError);
}

TEST(Schedule, TemperatureStartsAtTInit) {
  const AnnealingSchedule s(default_params());
  EXPECT_DOUBLE_EQ(s.temperature(0), 100.0);
}

TEST(Schedule, TemperatureWithUnitK3CoolsToOne) {
  // Eqn 4 with k3 = 1: T(span) = T_init * exp(-ln T_init) = 1.
  const AnnealingSchedule s(default_params());
  EXPECT_NEAR(s.temperature(100), 1.0, 1e-9);
}

TEST(Schedule, TemperatureMonotonicallyDecreases) {
  const AnnealingSchedule s(default_params());
  double prev = s.temperature(0);
  for (std::size_t g = 1; g <= 100; ++g) {
    const double t = s.temperature(g);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Schedule, TemperatureClampedBeyondSpan) {
  const AnnealingSchedule s(default_params());
  EXPECT_DOUBLE_EQ(s.temperature(100), s.temperature(1000));
}

TEST(Schedule, CostGrowsWithSolutionIndex) {
  const AnnealingSchedule s(default_params());
  double prev = s.cost(1);
  for (std::size_t i = 2; i <= 10; ++i) {
    const double c = s.cost(i);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Schedule, CostIndexIsOneBased) {
  const AnnealingSchedule s(default_params());
  EXPECT_THROW(s.cost(0), PreconditionError);
}

TEST(Schedule, CostFollowsEqnTwo) {
  const AnnealingSchedule s(default_params());
  // c_i = k1 exp(k2 * i / (n-1)) with k1 = 0.05, k2 = 2, n = 5.
  EXPECT_NEAR(s.cost(1), 0.05 * std::exp(2.0 * 1.0 / 4.0), 1e-12);
  EXPECT_NEAR(s.cost(4), 0.05 * std::exp(2.0 * 4.0 / 4.0), 1e-12);
}

TEST(Schedule, ProbabilityDecreasesWithIndex) {
  // Paper point 2: solutions considered earlier have a higher probability.
  const AnnealingSchedule s(default_params());
  for (std::size_t gen : {0u, 50u, 100u}) {
    double prev = s.participation_probability(1, gen);
    for (std::size_t i = 2; i <= 8; ++i) {
      const double p = s.participation_probability(i, gen);
      EXPECT_LE(p, prev);
      prev = p;
    }
  }
}

TEST(Schedule, ProbabilityIncreasesOverGenerations) {
  // Paper point 1: local competition early, global competition late.
  const AnnealingSchedule s(default_params());
  for (std::size_t i : {1u, 3u, 5u}) {
    double prev = s.participation_probability(i, 0);
    for (std::size_t gen = 10; gen <= 100; gen += 10) {
      const double p = s.participation_probability(i, gen);
      EXPECT_GE(p, prev);
      prev = p;
    }
  }
}

TEST(Schedule, ProbabilityIsAValidProbability) {
  const AnnealingSchedule s(default_params());
  for (std::size_t i = 1; i <= 20; ++i) {
    for (std::size_t gen = 0; gen <= 120; gen += 5) {
      const double p = s.participation_probability(i, gen);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ShapedSchedule, HitsMidAndEndTargets) {
  ScheduleShape shape;
  shape.p_mid_first = 0.8;
  shape.p_mid_last = 0.2;
  shape.p_end_last = 0.95;
  const auto s = AnnealingSchedule::shaped(shape, 1.0, 100.0, 5, 100);
  EXPECT_NEAR(s.participation_probability(1, 50), 0.8, 1e-6);
  EXPECT_NEAR(s.participation_probability(5, 50), 0.2, 1e-6);
  EXPECT_NEAR(s.participation_probability(5, 100), 0.95, 1e-6);
}

TEST(ShapedSchedule, FirstSolutionNearCertainAtSpanEnd) {
  const auto s = AnnealingSchedule::shaped(ScheduleShape{}, 1.0, 100.0, 5, 100);
  EXPECT_GT(s.participation_probability(1, 100), 0.99);
}

TEST(ShapedSchedule, StartsMostlyLocal) {
  const auto s = AnnealingSchedule::shaped(ScheduleShape{}, 1.0, 100.0, 5, 100);
  EXPECT_LT(s.participation_probability(1, 0), 0.3);
  EXPECT_LT(s.participation_probability(5, 0), 0.1);
}

TEST(ShapedSchedule, RejectsInconsistentTargets) {
  ScheduleShape shape;
  shape.p_mid_first = 0.2;
  shape.p_mid_last = 0.8;  // must be below p_mid_first
  shape.p_end_last = 0.9;
  EXPECT_THROW(AnnealingSchedule::shaped(shape, 1.0, 100.0, 5, 100), PreconditionError);

  shape = ScheduleShape{};
  shape.p_end_last = shape.p_mid_last / 2.0;  // must grow over the span
  EXPECT_THROW(AnnealingSchedule::shaped(shape, 1.0, 100.0, 5, 100), PreconditionError);
}

TEST(ShapedSchedule, RejectsDegenerateProbabilities) {
  ScheduleShape shape;
  shape.p_mid_first = 1.0;
  EXPECT_THROW(AnnealingSchedule::shaped(shape, 1.0, 100.0, 5, 100), PreconditionError);
  shape = ScheduleShape{};
  shape.p_mid_last = 0.0;
  EXPECT_THROW(AnnealingSchedule::shaped(shape, 1.0, 100.0, 5, 100), PreconditionError);
}

/// Fig-4 style property sweep: shaped schedules keep the curve family's
/// ordering for every n and span.
struct ShapeCase {
  std::size_t n;
  std::size_t span;
};

class ShapedScheduleSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapedScheduleSweep, CurveFamilyOrderedByIndex) {
  const auto param = GetParam();
  const auto s = AnnealingSchedule::shaped(ScheduleShape{}, 1.0, 100.0, param.n, param.span);
  for (std::size_t gen = 0; gen <= param.span; gen += param.span / 10) {
    for (std::size_t i = 1; i < param.n; ++i) {
      EXPECT_GE(s.participation_probability(i, gen),
                s.participation_probability(i + 1, gen));
    }
  }
}

TEST_P(ShapedScheduleSweep, AllCurvesRiseToward1AtEnd) {
  const auto param = GetParam();
  const auto s = AnnealingSchedule::shaped(ScheduleShape{}, 1.0, 100.0, param.n, param.span);
  for (std::size_t i = 1; i <= param.n; ++i) {
    EXPECT_GE(s.participation_probability(i, param.span),
              s.participation_probability(i, param.span / 2));
    EXPECT_GE(s.participation_probability(i, param.span / 2),
              s.participation_probability(i, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapedScheduleSweep,
                         ::testing::Values(ShapeCase{5, 100}, ShapeCase{5, 600},
                                           ShapeCase{3, 50}, ShapeCase{8, 150},
                                           ShapeCase{10, 1000}));

TEST(AnnealingScheduleInvariants, ShapedSchedulesCoolMonotonically) {
  // The verifier run_sacga/run_mesacga call under ANADEX_CHECK_INVARIANTS
  // must accept every schedule the shaping solver can produce.
  for (const double t_init : {10.0, 100.0, 1000.0}) {
    for (const std::size_t span : {std::size_t{1}, std::size_t{50}, std::size_t{600}}) {
      const auto s = AnnealingSchedule::shaped(ScheduleShape{}, 1.0, t_init, 5, span);
      EXPECT_NO_THROW(s.require_monotone_cooling())
          << "t_init = " << t_init << ", span = " << span;
    }
  }
}

TEST(AnnealingScheduleInvariants, RawParamsCoolMonotonically) {
  EXPECT_NO_THROW(AnnealingSchedule(default_params()).require_monotone_cooling());
}

TEST(AnnealingScheduleInvariants, RejectsReheatingSchedule) {
  // A negative cooling exponent makes T_A grow with the generation —
  // competition would drift back toward local, violating the phase
  // contract; the verifier must catch it.
  ScheduleParams p = default_params();
  p.k3 = -1.0;
  const AnnealingSchedule reheating(p);
  EXPECT_GT(reheating.temperature(p.span), reheating.temperature(0));
  EXPECT_THROW(reheating.require_monotone_cooling(), InvariantError);
}

}  // namespace
}  // namespace anadex::sacga
