#include "moga/hypervolume.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

const std::vector<double> kRef2{1.0, 1.0};

TEST(Hypervolume2d, EmptyFrontIsZero) {
  EXPECT_EQ(hypervolume({}, kRef2), 0.0);
}

TEST(Hypervolume2d, SinglePointBoxArea) {
  EXPECT_DOUBLE_EQ(hypervolume({{0.25, 0.5}}, kRef2), 0.75 * 0.5);
}

TEST(Hypervolume2d, PointOnReferenceContributesNothing) {
  EXPECT_EQ(hypervolume({{1.0, 0.0}}, kRef2), 0.0);
  EXPECT_EQ(hypervolume({{0.0, 1.0}}, kRef2), 0.0);
}

TEST(Hypervolume2d, PointBeyondReferenceIgnored) {
  EXPECT_EQ(hypervolume({{2.0, 0.1}}, kRef2), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{2.0, 0.1}, {0.5, 0.5}}, kRef2), 0.25);
}

TEST(Hypervolume2d, TwoTradeOffPointsUnion) {
  // Boxes: (0.2, 0.6): 0.8*0.4 = 0.32; (0.6, 0.2) adds (1-0.6)*(0.6-0.2) = 0.16.
  EXPECT_DOUBLE_EQ(hypervolume({{0.2, 0.6}, {0.6, 0.2}}, kRef2), 0.48);
}

TEST(Hypervolume2d, OrderOfPointsIrrelevant) {
  const double a = hypervolume({{0.2, 0.6}, {0.6, 0.2}, {0.4, 0.4}}, kRef2);
  const double b = hypervolume({{0.4, 0.4}, {0.6, 0.2}, {0.2, 0.6}}, kRef2);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Hypervolume2d, DominatedPointAddsNothing) {
  const double without = hypervolume({{0.2, 0.2}}, kRef2);
  const double with = hypervolume({{0.2, 0.2}, {0.5, 0.5}}, kRef2);
  EXPECT_DOUBLE_EQ(without, with);
}

TEST(Hypervolume2d, DuplicatePointsCountedOnce) {
  const double once = hypervolume({{0.3, 0.3}}, kRef2);
  const double twice = hypervolume({{0.3, 0.3}, {0.3, 0.3}}, kRef2);
  EXPECT_DOUBLE_EQ(once, twice);
}

TEST(Hypervolume2d, StaircaseExactValue) {
  // Three-step staircase against ref (4, 4):
  //   (1,3): (4-1)*(4-3) = 3
  //   (2,2): (4-2)*(3-2) = 2
  //   (3,1): (4-3)*(2-1) = 1   => total 6
  const std::vector<double> ref{4.0, 4.0};
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}}, ref), 6.0);
}

TEST(Hypervolume, MismatchedDimensionsRejected) {
  EXPECT_THROW(hypervolume({{0.1, 0.1, 0.1}}, kRef2), PreconditionError);
}

TEST(Hypervolume, EmptyReferenceRejected) {
  EXPECT_THROW(hypervolume({{0.1}}, std::vector<double>{}), PreconditionError);
}

TEST(Hypervolume1d, DistanceToBestPoint) {
  const std::vector<double> ref{10.0};
  EXPECT_DOUBLE_EQ(hypervolume({{4.0}, {7.0}}, ref), 6.0);
}

TEST(Hypervolume3d, SingleBoxVolume) {
  const std::vector<double> ref{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(hypervolume({{0.5, 0.5, 0.5}}, ref), 0.125);
}

TEST(Hypervolume3d, TwoDisjointishBoxesUnion) {
  const std::vector<double> ref{1.0, 1.0, 1.0};
  // Box a: [0,1]^2 x ... a=(0.0,0.0,0.5): volume 1*1*0.5 = 0.5
  // Box b: (0.5,0.5,0.0): volume 0.5*0.5*1 = 0.25; overlap 0.5*0.5*0.5=0.125
  const double hv = hypervolume({{0.0, 0.0, 0.5}, {0.5, 0.5, 0.0}}, ref);
  EXPECT_DOUBLE_EQ(hv, 0.5 + 0.25 - 0.125);
}

TEST(Hypervolume3d, DominatedPointAddsNothing) {
  const std::vector<double> ref{1.0, 1.0, 1.0};
  const double without = hypervolume({{0.2, 0.2, 0.2}}, ref);
  const double with = hypervolume({{0.2, 0.2, 0.2}, {0.6, 0.6, 0.6}}, ref);
  EXPECT_DOUBLE_EQ(without, with);
}

TEST(Hypervolume4d, HypercubeVolume) {
  const std::vector<double> ref{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(hypervolume({{0.5, 0.5, 0.5, 0.5}}, ref), 0.0625, 1e-12);
}

/// 2-D/3-D consistency: a 3-D front whose third coordinate is constant has
/// hv3 = hv2 * (ref3 - c).
TEST(Hypervolume, DegenerateThirdAxisMatches2d) {
  const std::vector<double> ref2{1.0, 1.0};
  const std::vector<double> ref3{1.0, 1.0, 2.0};
  const FrontPoints front2{{0.2, 0.6}, {0.6, 0.2}};
  FrontPoints front3;
  for (const auto& p : front2) front3.push_back({p[0], p[1], 0.5});
  EXPECT_NEAR(hypervolume(front3, ref3), hypervolume(front2, ref2) * 1.5, 1e-12);
}

}  // namespace
}  // namespace anadex::moga
