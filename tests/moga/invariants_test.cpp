// Failure-path coverage for the canonical-front verifiers (moga/invariants):
// the verifiers are compiled unconditionally, so corrupted inputs can be
// driven in any build; the hot-path call sites inside the NDS kernels are
// additionally exercised under ANADEX_CHECK_INVARIANTS builds.
#include "moga/invariants.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/nds.hpp"

namespace anadex::moga {
namespace {

Population grid_population(std::size_t n) {
  // A diagonal trade-off plus one dominated straggler so the sort yields
  // more than one front.
  Population pop(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    pop[i].eval.objectives = {x, static_cast<double>(n) - x};
  }
  pop.back().eval.objectives = {static_cast<double>(n) + 1.0,
                                static_cast<double>(n) + 1.0};
  return pop;
}

TEST(FrontInvariants, AcceptsCanonicalFront) {
  const std::vector<std::size_t> front = {0, 2, 5, 9};
  EXPECT_NO_THROW(require_ascending_front(front));
}

TEST(FrontInvariants, RejectsEmptyFront) {
  const std::vector<std::size_t> front;
  EXPECT_THROW(require_ascending_front(front), InvariantError);
}

TEST(FrontInvariants, RejectsDescendingFront) {
  const std::vector<std::size_t> front = {0, 5, 2};
  EXPECT_THROW(require_ascending_front(front), InvariantError);
}

TEST(FrontInvariants, RejectsDuplicateWithinFront) {
  const std::vector<std::size_t> front = {1, 3, 3, 7};
  EXPECT_THROW(require_ascending_front(front), InvariantError);
}

TEST(FrontInvariants, AcceptsKernelOutput) {
  auto pop = grid_population(8);
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_GE(fronts.size(), 2u);
  EXPECT_NO_THROW(require_canonical_fronts(fronts, pop.size()));
}

TEST(FrontInvariants, RejectsShuffledFront) {
  auto pop = grid_population(8);
  auto fronts = fast_nondominated_sort(pop);
  ASSERT_GE(fronts.front().size(), 2u);
  std::reverse(fronts.front().begin(), fronts.front().end());
  EXPECT_THROW(require_canonical_fronts(fronts, pop.size()), InvariantError);
}

TEST(FrontInvariants, RejectsLostMember) {
  auto pop = grid_population(8);
  auto fronts = fast_nondominated_sort(pop);
  fronts.front().pop_back();
  EXPECT_THROW(require_canonical_fronts(fronts, pop.size()), InvariantError);
}

TEST(FrontInvariants, RejectsMemberInTwoFronts) {
  auto pop = grid_population(8);
  auto fronts = fast_nondominated_sort(pop);
  ASSERT_GE(fronts.size(), 2u);
  // Keep the total count right by swapping a member for a duplicate of one
  // already present in an earlier front.
  fronts.back().back() = fronts.front().front();
  std::sort(fronts.back().begin(), fronts.back().end());
  EXPECT_THROW(require_canonical_fronts(fronts, pop.size()), InvariantError);
}

TEST(FrontInvariants, RejectsWrongTotal) {
  auto pop = grid_population(8);
  const auto fronts = fast_nondominated_sort(pop);
  EXPECT_THROW(require_canonical_fronts(fronts, pop.size() + 1), InvariantError);
}

TEST(FrontInvariants, FailureNamesTheContract) {
  const std::vector<std::size_t> front = {4, 1};
  try {
    require_ascending_front(front);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("ascend"), std::string::npos);
  }
}

#if ANADEX_CHECK_INVARIANTS_ENABLED
TEST(FrontInvariants, CrowdingRejectsShuffledFrontWhenChecksOn) {
  // The crowding kernel trusts canonical order from sort(); feeding it a
  // shuffled front must trip the gated entry check rather than silently
  // producing order-dependent distances.
  auto pop = grid_population(8);
  RankingScratch scratch;
  auto fronts = scratch.sort(pop);
  ASSERT_GE(fronts.front().size(), 2u);
  std::reverse(fronts.front().begin(), fronts.front().end());
  EXPECT_THROW(scratch.crowding(pop, fronts.front()), InvariantError);
}

TEST(FrontInvariants, KernelsPassTheirOwnExitChecksWhenChecksOn) {
  // Smoke: with checks compiled in, a full sort + crowding pass over every
  // front completes without tripping any gated invariant.
  auto pop = grid_population(32);
  RankingScratch scratch;
  const auto fronts = scratch.sort(pop);
  for (const auto& front : fronts) {
    EXPECT_NO_THROW(scratch.crowding(pop, front));
  }
}
#endif  // ANADEX_CHECK_INVARIANTS_ENABLED

}  // namespace
}  // namespace anadex::moga
