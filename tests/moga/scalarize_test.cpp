#include "moga/scalarize.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "problems/analytic.hpp"

namespace anadex::moga {
namespace {

WeightedSumParams small_params() {
  WeightedSumParams p;
  p.weight_count = 8;
  p.population_size = 24;
  p.generations_per_weight = 40;
  p.seed = 7;
  return p;
}

TEST(WeightedSum, ValidatesParameters) {
  const auto problem = problems::make_sch();
  WeightedSumParams p = small_params();
  p.weight_count = 1;
  EXPECT_THROW(run_weighted_sum(*problem, p), PreconditionError);
  p = small_params();
  p.population_size = 5;
  EXPECT_THROW(run_weighted_sum(*problem, p), PreconditionError);
}

TEST(WeightedSum, RejectsNonBiobjective) {
  // Build a 3-objective dummy via the analytic suite? All suite problems are
  // 2-objective, so construct a tiny local problem instead.
  class ThreeObjective final : public Problem {
   public:
    std::string name() const override { return "3obj"; }
    std::size_t num_variables() const override { return 1; }
    std::size_t num_objectives() const override { return 3; }
    std::size_t num_constraints() const override { return 0; }
    std::vector<VariableBound> bounds() const override { return {{0.0, 1.0}}; }
    void evaluate(std::span<const double> x, Evaluation& out) const override {
      out.objectives = {x[0], 1.0 - x[0], x[0] * x[0]};
      out.violations.clear();
    }
  };
  const ThreeObjective problem;
  EXPECT_THROW(run_weighted_sum(problem, small_params()), PreconditionError);
}

TEST(WeightedSum, OneWinnerPerWeight) {
  const auto problem = problems::make_sch();
  const auto result = run_weighted_sum(*problem, small_params());
  EXPECT_EQ(result.all_winners.size(), 8u);
  EXPECT_FALSE(result.front.empty());
  EXPECT_LE(result.front.size(), result.all_winners.size());
}

TEST(WeightedSum, FrontIsNondominated) {
  const auto problem = problems::make_sch();
  const auto result = run_weighted_sum(*problem, small_params());
  for (const auto& a : result.front) {
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(WeightedSum, ExtremeWeightsFindObjectiveOptima) {
  // SCH: f1 = x^2 optimal at x = 0, f2 = (x-2)^2 optimal at x = 2; the
  // extreme weights must approach these anchor points.
  const auto problem = problems::make_sch();
  WeightedSumParams p = small_params();
  p.generations_per_weight = 80;
  const auto result = run_weighted_sum(*problem, p);
  double best_f1 = 1e9;
  double best_f2 = 1e9;
  for (const auto& ind : result.all_winners) {
    best_f1 = std::min(best_f1, ind.eval.objectives[0]);
    best_f2 = std::min(best_f2, ind.eval.objectives[1]);
  }
  EXPECT_LT(best_f1, 0.05);
  EXPECT_LT(best_f2, 0.05);
}

TEST(WeightedSum, HandlesConstrainedProblems) {
  const auto problem = problems::make_constr();
  WeightedSumParams p = small_params();
  p.generations_per_weight = 60;
  const auto result = run_weighted_sum(*problem, p);
  ASSERT_FALSE(result.front.empty());
  for (const auto& ind : result.front) EXPECT_TRUE(ind.feasible());
}

TEST(WeightedSum, DeterministicPerSeed) {
  const auto problem = problems::make_sch();
  const auto a = run_weighted_sum(*problem, small_params());
  const auto b = run_weighted_sum(*problem, small_params());
  ASSERT_EQ(a.all_winners.size(), b.all_winners.size());
  for (std::size_t i = 0; i < a.all_winners.size(); ++i) {
    EXPECT_EQ(a.all_winners[i].genes, b.all_winners[i].genes);
  }
}

TEST(WeightedSum, CannotPopulateNonConvexFrontRegions) {
  // ZDT2's front is concave: the weighted sum can only find its endpoints,
  // never the interior — the classic failure the paper alludes to when
  // motivating population-based methods.
  const auto problem = problems::make_zdt2(6);
  WeightedSumParams p = small_params();
  p.weight_count = 12;
  p.generations_per_weight = 80;
  const auto result = run_weighted_sum(*problem, p);
  std::size_t interior = 0;
  for (const auto& ind : result.front) {
    const double f1 = ind.eval.objectives[0];
    if (f1 > 0.15 && f1 < 0.85) ++interior;
  }
  EXPECT_LE(interior, 2u);  // essentially endpoints only
}

}  // namespace
}  // namespace anadex::moga
