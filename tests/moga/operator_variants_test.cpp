#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/operators.hpp"

namespace anadex::moga {
namespace {

const std::vector<VariableBound> kBounds{{0.0, 1.0}, {-2.0, 2.0}, {1e-12, 5e-12}};

TEST(BlxAlpha, ValidatesInput) {
  Rng rng(1);
  std::vector<double> a{0.5};
  std::vector<double> b{0.5, 0.5, 0.5};
  EXPECT_THROW(blx_alpha_crossover(kBounds, 0.5, a, b, rng), PreconditionError);
  a = {0.5, 0.0, 2e-12};
  b = {0.5, 0.0, 2e-12};
  EXPECT_THROW(blx_alpha_crossover(kBounds, -0.1, a, b, rng), PreconditionError);
}

TEST(BlxAlpha, ChildrenStayWithinBounds) {
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    auto a = random_genome(kBounds, rng);
    auto b = random_genome(kBounds, rng);
    blx_alpha_crossover(kBounds, 0.5, a, b, rng);
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      ASSERT_GE(a[i], kBounds[i].lower);
      ASSERT_LE(a[i], kBounds[i].upper);
      ASSERT_GE(b[i], kBounds[i].lower);
      ASSERT_LE(b[i], kBounds[i].upper);
    }
  }
}

TEST(BlxAlpha, ZeroAlphaSamplesInsideParentInterval) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a{0.2, -1.0, 2e-12};
    std::vector<double> b{0.8, 1.0, 4e-12};
    blx_alpha_crossover(kBounds, 0.0, a, b, rng);
    EXPECT_GE(a[0], 0.2);
    EXPECT_LE(a[0], 0.8);
    EXPECT_GE(b[1], -1.0);
    EXPECT_LE(b[1], 1.0);
  }
}

TEST(BlxAlpha, IdenticalParentsStayPut) {
  Rng rng(4);
  std::vector<double> a{0.5, 0.0, 3e-12};
  std::vector<double> b = a;
  blx_alpha_crossover(kBounds, 0.5, a, b, rng);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a[0], 0.5);
}

TEST(BlxAlpha, PositiveAlphaCanExplodeBeyondParents) {
  Rng rng(5);
  bool escaped = false;
  for (int trial = 0; trial < 500 && !escaped; ++trial) {
    std::vector<double> a{0.45, 0.0, 3e-12};
    std::vector<double> b{0.55, 0.0, 3e-12};
    blx_alpha_crossover(kBounds, 0.5, a, b, rng);
    escaped = a[0] < 0.45 || a[0] > 0.55 || b[0] < 0.45 || b[0] > 0.55;
  }
  EXPECT_TRUE(escaped);
}

TEST(GaussianMutation, ValidatesInput) {
  Rng rng(6);
  VariationParams params;
  std::vector<double> g{0.5};
  EXPECT_THROW(gaussian_mutation(kBounds, params, 0.1, g, rng), PreconditionError);
  g = {0.5, 0.0, 3e-12};
  EXPECT_THROW(gaussian_mutation(kBounds, params, -0.1, g, rng), PreconditionError);
}

TEST(GaussianMutation, StaysWithinBounds) {
  Rng rng(7);
  VariationParams params;
  params.mutation_probability = 1.0;
  for (int trial = 0; trial < 500; ++trial) {
    auto g = random_genome(kBounds, rng);
    gaussian_mutation(kBounds, params, 0.3, g, rng);
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      ASSERT_GE(g[i], kBounds[i].lower);
      ASSERT_LE(g[i], kBounds[i].upper);
    }
  }
}

TEST(GaussianMutation, ZeroSigmaIsIdentity) {
  Rng rng(8);
  VariationParams params;
  params.mutation_probability = 1.0;
  std::vector<double> g{0.5, 0.0, 3e-12};
  const auto before = g;
  gaussian_mutation(kBounds, params, 0.0, g, rng);
  EXPECT_EQ(g, before);
}

TEST(GaussianMutation, StepScaleTracksSigma) {
  Rng rng(9);
  VariationParams params;
  params.mutation_probability = 1.0;
  double small_steps = 0.0;
  double large_steps = 0.0;
  const int n = 3000;
  for (int trial = 0; trial < n; ++trial) {
    std::vector<double> g{0.5, 0.0, 3e-12};
    gaussian_mutation(kBounds, params, 0.01, g, rng);
    small_steps += std::abs(g[0] - 0.5);
    g = {0.5, 0.0, 3e-12};
    gaussian_mutation(kBounds, params, 0.1, g, rng);
    large_steps += std::abs(g[0] - 0.5);
  }
  EXPECT_GT(large_steps, 5.0 * small_steps);
}

TEST(GaussianMutation, RespectsMutationProbability) {
  Rng rng(10);
  VariationParams params;
  params.mutation_probability = 0.0;
  std::vector<double> g{0.5, 0.0, 3e-12};
  const auto before = g;
  gaussian_mutation(kBounds, params, 0.5, g, rng);
  EXPECT_EQ(g, before);
}

}  // namespace
}  // namespace anadex::moga
