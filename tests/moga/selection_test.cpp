#include "moga/selection.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/nds.hpp"

namespace anadex::moga {
namespace {

Individual ranked(int rank, double crowding = 0.0) {
  Individual ind;
  ind.eval.objectives = {0.0, 0.0};
  ind.rank = rank;
  ind.crowding = crowding;
  return ind;
}

const Preference kCrowdedLess = [](const Individual& a, const Individual& b) {
  return crowded_less(a, b);
};

TEST(Tournament, EmptyPopulationRejected) {
  Rng rng(1);
  Population pop;
  EXPECT_THROW(binary_tournament(pop, kCrowdedLess, rng), PreconditionError);
}

TEST(Tournament, SingleMemberAlwaysChosen) {
  Rng rng(1);
  Population pop{ranked(3)};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(binary_tournament(pop, kCrowdedLess, rng), 0u);
  }
}

TEST(Tournament, StrictlyBetterMemberAlwaysBeatsWorse) {
  Rng rng(2);
  Population pop{ranked(0), ranked(5)};
  int wins = 0;
  for (int i = 0; i < 200; ++i) {
    if (binary_tournament(pop, kCrowdedLess, rng) == 0) ++wins;
  }
  EXPECT_EQ(wins, 200);  // two contestants, always distinct, better always wins
}

TEST(Tournament, TieBrokenRandomly) {
  Rng rng(3);
  Population pop{ranked(0, 1.0), ranked(0, 1.0)};
  int zero_wins = 0;
  for (int i = 0; i < 2000; ++i) {
    if (binary_tournament(pop, kCrowdedLess, rng) == 0) ++zero_wins;
  }
  EXPECT_GT(zero_wins, 800);
  EXPECT_LT(zero_wins, 1200);
}

TEST(MakeOffspring, ProducesExactlyRequestedCount) {
  Rng rng(4);
  const std::vector<VariableBound> bounds{{0.0, 1.0}, {0.0, 1.0}};
  Population pop;
  for (int i = 0; i < 6; ++i) {
    Individual ind = ranked(0, static_cast<double>(i));
    ind.genes = random_genome(bounds, rng);
    pop.push_back(std::move(ind));
  }
  VariationParams params;
  for (std::size_t count : {1u, 2u, 7u, 100u}) {
    const auto children = make_offspring(pop, bounds, params, kCrowdedLess, count, rng);
    EXPECT_EQ(children.size(), count);
    for (const auto& child : children) {
      EXPECT_EQ(child.size(), bounds.size());
      for (std::size_t g = 0; g < child.size(); ++g) {
        EXPECT_GE(child[g], bounds[g].lower);
        EXPECT_LE(child[g], bounds[g].upper);
      }
    }
  }
}

TEST(MakeOffspring, ChildrenDeriveFromPopulationGenePool) {
  Rng rng(5);
  const std::vector<VariableBound> bounds{{0.0, 10.0}};
  // All parents share the same gene: with no mutation, children must too.
  Population pop;
  for (int i = 0; i < 4; ++i) {
    Individual ind = ranked(0);
    ind.genes = {4.0};
    pop.push_back(std::move(ind));
  }
  VariationParams params;
  params.mutation_probability = 0.0;
  const auto children = make_offspring(pop, bounds, params, kCrowdedLess, 10, rng);
  for (const auto& child : children) EXPECT_DOUBLE_EQ(child[0], 4.0);
}

}  // namespace
}  // namespace anadex::moga
