// Golden-equivalence suite for the SoA ranking kernels (docs/performance.md):
// the sweep (m == 2) and bitset (m > 2) kernels must produce exactly the
// same ranks, fronts and crowding distances as the legacy pairwise
// reference on randomized populations covering the awkward cases —
// constraint-violation ties, exact duplicate objective vectors, subset
// (single-partition) selections and all-infeasible groups.
#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "moga/nds.hpp"

namespace anadex::moga {
namespace {

/// Population generator stressing the equivalence proof: objectives drawn
/// from a SMALL integer grid (so exact duplicates and single-objective
/// ties are frequent), a configurable fraction of infeasible members with
/// violations from a small grid (so equal-total-violation ties occur).
Population random_population(std::mt19937& rng, std::size_t n, std::size_t arity,
                             double infeasible_fraction, int grid = 6) {
  std::uniform_int_distribution<int> cell(0, grid - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> vio_cell(1, 3);
  Population pop(n);
  for (auto& ind : pop) {
    ind.eval.objectives.resize(arity);
    for (auto& f : ind.eval.objectives) f = static_cast<double>(cell(rng));
    if (unit(rng) < infeasible_fraction) {
      ind.eval.violations = {static_cast<double>(vio_cell(rng)), 0.0};
    } else {
      ind.eval.violations.clear();
    }
  }
  return pop;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

std::vector<int> ranks_of(const Population& pop) {
  std::vector<int> ranks;
  ranks.reserve(pop.size());
  for (const auto& ind : pop) ranks.push_back(ind.rank);
  return ranks;
}

/// Runs `kernel` and the legacy reference on copies of `pop` restricted to
/// `indices` and requires identical fronts and identical ranks.
template <class Kernel>
void expect_matches_legacy(const Population& pop, std::span<const std::size_t> indices,
                           Kernel kernel, const char* label) {
  Population for_kernel = pop;
  Population for_legacy = pop;
  NdsArena arena;
  const auto expected = legacy_nondominated_sort(for_legacy, indices, arena);
  const auto actual = kernel(for_kernel, indices);
  ASSERT_EQ(actual, expected) << label;
  EXPECT_EQ(ranks_of(for_kernel), ranks_of(for_legacy)) << label;
}

TEST(NdsKernels, SweepMatchesLegacyOnRandomBiObjectivePopulations) {
  std::mt19937 rng(20260807);
  RankingScratch scratch;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + rng() % 40;
    const double infeasible = (trial % 4) * 0.25;  // 0, 25, 50, 75 %
    const Population pop = random_population(rng, n, 2, infeasible);
    expect_matches_legacy(
        pop, all_indices(n),
        [&scratch](Population& p, std::span<const std::size_t> idx) {
          return scratch.sweep_sort(p, idx);
        },
        "sweep");
  }
}

TEST(NdsKernels, BitsetMatchesLegacyOnRandomManyObjectivePopulations) {
  std::mt19937 rng(987654321);
  RankingScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 40;
    const std::size_t arity = 3 + rng() % 2;  // m = 3 or 4
    const double infeasible = (trial % 4) * 0.25;
    const Population pop = random_population(rng, n, arity, infeasible);
    expect_matches_legacy(
        pop, all_indices(n),
        [&scratch](Population& p, std::span<const std::size_t> idx) {
          return scratch.bitset_sort(p, idx);
        },
        "bitset");
  }
}

TEST(NdsKernels, BitsetMatchesLegacyOnBiObjectivePopulations) {
  // The bitset kernel accepts any arity >= 2; cross-check it against both
  // the reference and (implicitly) the sweep on the m == 2 shape.
  std::mt19937 rng(424242);
  RankingScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 32;
    const Population pop = random_population(rng, n, 2, 0.3);
    expect_matches_legacy(
        pop, all_indices(n),
        [&scratch](Population& p, std::span<const std::size_t> idx) {
          return scratch.bitset_sort(p, idx);
        },
        "bitset(m=2)");
  }
}

TEST(NdsKernels, KernelsMatchLegacyOnPartitionSlices) {
  // SACGA ranks arbitrary subsets (one partition at a time); the kernels
  // must agree with the reference on non-contiguous index selections.
  std::mt19937 rng(1357);
  RankingScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 8 + rng() % 32;
    const Population pop = random_population(rng, n, 2, 0.3);
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 2 == 0) subset.push_back(i);
    }
    if (subset.empty()) subset.push_back(n / 2);
    expect_matches_legacy(
        pop, subset,
        [&scratch](Population& p, std::span<const std::size_t> idx) {
          return scratch.sweep_sort(p, idx);
        },
        "sweep/slice");
  }
}

TEST(NdsKernels, SweepHandlesAllDuplicateVectors) {
  // Every member identical: one front holding everybody, in index order.
  Population pop(7);
  for (auto& ind : pop) ind.eval.objectives = {2.0, 3.0};
  RankingScratch scratch;
  const auto fronts = scratch.sort(pop, all_indices(pop.size()));
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0], all_indices(pop.size()));
  for (const auto& ind : pop) EXPECT_EQ(ind.rank, 0);
}

TEST(NdsKernels, SweepHandlesAllInfeasiblePopulations) {
  // All infeasible with tied violation totals: layers by violation, ties
  // sharing one front.
  Population pop(6);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].eval.objectives = {static_cast<double>(i), static_cast<double>(i)};
    pop[i].eval.violations = {static_cast<double>(1 + i / 2)};  // 1, 1, 2, 2, 3, 3
  }
  expect_matches_legacy(
      pop, all_indices(pop.size()),
      [](Population& p, std::span<const std::size_t> idx) {
        RankingScratch scratch;
        return scratch.sweep_sort(p, idx);
      },
      "sweep/all-infeasible");
  RankingScratch scratch;
  const auto fronts = scratch.sort(pop, all_indices(pop.size()));
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{4, 5}));
}

TEST(NdsKernels, DispatcherFallsBackOnNonUniformSelections) {
  // Mixed arity (uniform == false) must route to the legacy kernel, which
  // can rank it as long as no two FEASIBLE members ever meet (dominance
  // between mismatched objective vectors is undefined); infeasible members
  // compare by total violation only.
  Population pop(3);
  pop[0].eval.objectives = {1.0, 1.0};
  pop[1].eval.objectives = {2.0};
  pop[1].eval.violations = {1.0};
  pop[2].eval.objectives = {0.0, 0.0, 0.0};
  pop[2].eval.violations = {2.0};
  expect_matches_legacy(
      pop, all_indices(pop.size()),
      [](Population& p, std::span<const std::size_t> idx) {
        RankingScratch s;
        return s.sort(p, idx);
      },
      "dispatch/non-uniform");
  RankingScratch scratch;
  const auto fronts = scratch.sort(pop, all_indices(pop.size()));
  ASSERT_EQ(fronts.size(), 3u);  // feasible, violation 1, violation 2
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0}));
}

TEST(NdsKernels, DispatcherFallsBackOnNonFiniteObjectives) {
  Population pop(4);
  pop[0].eval.objectives = {1.0, 1.0};
  pop[1].eval.objectives = {std::numeric_limits<double>::quiet_NaN(), 0.0};
  pop[2].eval.objectives = {0.5, 2.0};
  pop[3].eval.objectives = {std::numeric_limits<double>::infinity(), 0.0};
  expect_matches_legacy(
      pop, all_indices(pop.size()),
      [](Population& p, std::span<const std::size_t> idx) {
        RankingScratch s;
        return s.sort(p, idx);
      },
      "dispatch/non-finite");
}

// ---- crowding --------------------------------------------------------------

/// Reference crowding: the verbatim historical per-individual algorithm
/// (zero, boundary = infinity, interior accumulates neighbour gaps, each
/// objective's sort starting from the previous objective's permutation).
void reference_crowding(Population& population, std::span<const std::size_t> front) {
  for (std::size_t idx : front) population[idx].crowding = 0.0;
  if (front.empty()) return;
  if (front.size() <= 2) {
    for (std::size_t idx : front) {
      population[idx].crowding = Individual::kInfiniteCrowding;
    }
    return;
  }
  const std::size_t num_objectives = population[front[0]].eval.objectives.size();
  std::vector<std::size_t> sorted(front.begin(), front.end());
  for (std::size_t m = 0; m < num_objectives; ++m) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return population[a].eval.objectives[m] < population[b].eval.objectives[m];
    });
    const double lo = population[sorted.front()].eval.objectives[m];
    const double hi = population[sorted.back()].eval.objectives[m];
    population[sorted.front()].crowding = Individual::kInfiniteCrowding;
    population[sorted.back()].crowding = Individual::kInfiniteCrowding;
    if (hi == lo) continue;
    for (std::size_t i = 1; i + 1 < sorted.size(); ++i) {
      const double below = population[sorted[i - 1]].eval.objectives[m];
      const double above = population[sorted[i + 1]].eval.objectives[m];
      population[sorted[i]].crowding += (above - below) / (hi - lo);
    }
  }
}

TEST(NdsKernels, FlatCrowdingIsBitIdenticalToTheReference) {
  std::mt19937 rng(7531);
  RankingScratch scratch;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 1 + rng() % 24;
    const std::size_t arity = 2 + rng() % 2;
    Population pop = random_population(rng, n, arity, 0.2);
    Population expected_pop = pop;

    const auto fronts = scratch.sort(pop, all_indices(n));
    {
      NdsArena arena;
      legacy_nondominated_sort(expected_pop, all_indices(n), arena);
    }
    for (const auto& front : fronts) {
      scratch.crowding(pop, front);
      reference_crowding(expected_pop, front);
      for (std::size_t idx : front) {
        // Bit-identical, not approximately equal: the flat path must run
        // the same comparisons and additions in the same order.
        EXPECT_EQ(pop[idx].crowding, expected_pop[idx].crowding)
            << "trial " << trial << " member " << idx;
      }
    }
  }
}

TEST(NdsKernels, FreeFunctionsWrapTheScratch) {
  // The historical entry points keep working (and agree with the scratch).
  std::mt19937 rng(99);
  Population pop = random_population(rng, 20, 2, 0.25);
  Population pop2 = pop;
  RankingScratch scratch;
  const auto via_scratch = scratch.sort(pop);
  const auto via_free = fast_nondominated_sort(pop2);
  EXPECT_EQ(via_free, via_scratch);
  for (const auto& front : via_free) {
    assign_crowding(pop2, front);
    scratch.crowding(pop, front);
    for (std::size_t idx : front) {
      EXPECT_EQ(pop2[idx].crowding, pop[idx].crowding);
    }
  }
}

}  // namespace
}  // namespace anadex::moga
