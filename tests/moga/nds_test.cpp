#include "moga/nds.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace anadex::moga {
namespace {

Individual make_ind(std::vector<double> objs, double violation = 0.0) {
  Individual ind;
  ind.eval.objectives = std::move(objs);
  if (violation > 0.0) ind.eval.violations = {violation};
  return ind;
}

TEST(Nds, SingleIndividualIsFrontZero) {
  Population pop{make_ind({1.0, 1.0})};
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(pop[0].rank, 0);
}

TEST(Nds, EmptySelectionYieldsNoFronts) {
  Population pop;
  EXPECT_TRUE(fast_nondominated_sort(pop).empty());
}

TEST(Nds, ChainOfDominationMakesOneFrontPerIndividual) {
  Population pop{make_ind({3.0, 3.0}), make_ind({1.0, 1.0}), make_ind({2.0, 2.0})};
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(pop[1].rank, 0);
  EXPECT_EQ(pop[2].rank, 1);
  EXPECT_EQ(pop[0].rank, 2);
}

TEST(Nds, TradeOffSolutionsShareFrontZero) {
  Population pop{make_ind({1.0, 4.0}), make_ind({2.0, 3.0}), make_ind({4.0, 1.0}),
                 make_ind({3.0, 3.5})};
  const auto fronts = fast_nondominated_sort(pop);
  EXPECT_EQ(fronts[0].size(), 3u);  // the (3, 3.5) point is dominated by (2, 3)
  EXPECT_EQ(pop[3].rank, 1);
}

TEST(Nds, InfeasibleAlwaysRanksBehindFeasible) {
  Population pop{make_ind({0.0, 0.0}, /*violation=*/1.0), make_ind({9.0, 9.0})};
  fast_nondominated_sort(pop);
  EXPECT_EQ(pop[1].rank, 0);
  EXPECT_EQ(pop[0].rank, 1);
}

TEST(Nds, InfeasibleOrderedByViolation) {
  Population pop{make_ind({0.0}, 3.0), make_ind({0.0}, 1.0), make_ind({0.0}, 2.0)};
  fast_nondominated_sort(pop);
  EXPECT_EQ(pop[1].rank, 0);
  EXPECT_EQ(pop[2].rank, 1);
  EXPECT_EQ(pop[0].rank, 2);
}

TEST(Nds, SubsetSortTouchesOnlySelectedIndices) {
  Population pop{make_ind({1.0, 1.0}), make_ind({2.0, 2.0}), make_ind({0.5, 0.5})};
  pop[2].rank = -77;  // sentinel: index 2 not in the subset
  const std::vector<std::size_t> subset{0, 1};
  const auto fronts = fast_nondominated_sort(pop, subset);
  ASSERT_EQ(fronts.size(), 2u);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[1].rank, 1);
  EXPECT_EQ(pop[2].rank, -77);
}

TEST(Nds, FrontsPartitionTheSelection) {
  Population pop;
  for (int i = 0; i < 20; ++i) {
    pop.push_back(make_ind({static_cast<double>(i % 5), static_cast<double>((7 * i) % 5)}));
  }
  const auto fronts = fast_nondominated_sort(pop);
  std::size_t total = 0;
  for (const auto& f : fronts) total += f.size();
  EXPECT_EQ(total, pop.size());
}

TEST(Crowding, BoundaryPointsGetInfinity) {
  Population pop{make_ind({1.0, 4.0}), make_ind({2.0, 3.0}), make_ind({3.0, 2.0}),
                 make_ind({4.0, 1.0})};
  const std::vector<std::size_t> front{0, 1, 2, 3};
  assign_crowding(pop, front);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[3].crowding));
  EXPECT_FALSE(std::isinf(pop[1].crowding));
  EXPECT_FALSE(std::isinf(pop[2].crowding));
}

TEST(Crowding, UpToTwoPointsAllInfinite) {
  Population pop{make_ind({1.0, 2.0}), make_ind({2.0, 1.0})};
  const std::vector<std::size_t> front{0, 1};
  assign_crowding(pop, front);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[1].crowding));
}

TEST(Crowding, IsolatedPointGetsLargerDistance) {
  // Points on a line; the middle one near its left neighbour.
  Population pop{make_ind({0.0, 10.0}), make_ind({1.0, 9.0}), make_ind({2.0, 8.0}),
                 make_ind({8.0, 2.0}), make_ind({10.0, 0.0})};
  const std::vector<std::size_t> front{0, 1, 2, 3, 4};
  assign_crowding(pop, front);
  EXPECT_GT(pop[3].crowding, pop[1].crowding);
}

TEST(Crowding, DegenerateObjectiveContributesNothing) {
  Population pop{make_ind({1.0, 5.0}), make_ind({2.0, 5.0}), make_ind({3.0, 5.0})};
  const std::vector<std::size_t> front{0, 1, 2};
  assign_crowding(pop, front);
  // Second objective constant: only the first objective spreads; the middle
  // point has finite crowding from that axis alone.
  EXPECT_FALSE(std::isinf(pop[1].crowding));
  EXPECT_GT(pop[1].crowding, 0.0);
}

TEST(Crowding, EmptyFrontIsNoop) {
  Population pop;
  EXPECT_NO_THROW(assign_crowding(pop, std::vector<std::size_t>{}));
}

TEST(CrowdedLess, LowerRankWins) {
  Individual a = make_ind({1.0});
  Individual b = make_ind({1.0});
  a.rank = 0;
  b.rank = 1;
  a.crowding = 0.0;
  b.crowding = 100.0;
  EXPECT_TRUE(crowded_less(a, b));
  EXPECT_FALSE(crowded_less(b, a));
}

TEST(CrowdedLess, SameRankLargerCrowdingWins) {
  Individual a = make_ind({1.0});
  Individual b = make_ind({1.0});
  a.rank = 1;
  b.rank = 1;
  a.crowding = 2.0;
  b.crowding = 1.0;
  EXPECT_TRUE(crowded_less(a, b));
  EXPECT_FALSE(crowded_less(b, a));
}

}  // namespace
}  // namespace anadex::moga
