#include "moga/archive.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

Individual point(double f1, double f2, double violation = 0.0) {
  Individual ind;
  ind.eval.objectives = {f1, f2};
  if (violation > 0.0) ind.eval.violations = {violation};
  return ind;
}

TEST(Archive, CapacityMustBePositive) {
  EXPECT_THROW(Archive(0), PreconditionError);
}

TEST(Archive, AcceptsFeasibleNondominated) {
  Archive archive(4);
  EXPECT_TRUE(archive.offer(point(1.0, 2.0)));
  EXPECT_TRUE(archive.offer(point(2.0, 1.0)));
  EXPECT_EQ(archive.size(), 2u);
}

TEST(Archive, RejectsInfeasible) {
  Archive archive(4);
  EXPECT_FALSE(archive.offer(point(0.0, 0.0, /*violation=*/0.1)));
  EXPECT_TRUE(archive.empty());
}

TEST(Archive, RejectsDominatedCandidate) {
  Archive archive(4);
  archive.offer(point(1.0, 1.0));
  EXPECT_FALSE(archive.offer(point(2.0, 2.0)));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, RejectsDuplicateObjectives) {
  Archive archive(4);
  archive.offer(point(1.0, 1.0));
  EXPECT_FALSE(archive.offer(point(1.0, 1.0)));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, RemovesNewlyDominatedMembers) {
  Archive archive(4);
  archive.offer(point(2.0, 2.0));
  archive.offer(point(3.0, 1.0));
  EXPECT_TRUE(archive.offer(point(1.0, 1.0)));  // dominates both
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.members()[0].eval.objectives, (std::vector<double>{1.0, 1.0}));
}

TEST(Archive, EvictsMostCrowdedWhenFull) {
  Archive archive(3);
  archive.offer(point(0.0, 10.0));
  archive.offer(point(10.0, 0.0));
  archive.offer(point(5.0, 5.0));
  // The new point (4.9, 5.2) is mutually nondominated and very close to
  // (5, 5): one of the crowded middle points must go; the extremes stay.
  EXPECT_TRUE(archive.offer(point(4.9, 5.2)));
  EXPECT_EQ(archive.size(), 3u);
  bool has_low_extreme = false;
  bool has_high_extreme = false;
  for (const auto& m : archive.members()) {
    if (m.eval.objectives == std::vector<double>{0.0, 10.0}) has_low_extreme = true;
    if (m.eval.objectives == std::vector<double>{10.0, 0.0}) has_high_extreme = true;
  }
  EXPECT_TRUE(has_low_extreme);
  EXPECT_TRUE(has_high_extreme);
}

TEST(Archive, OfferAllFiltersPopulation) {
  Population pop{point(1.0, 4.0), point(2.0, 3.0), point(5.0, 5.0), point(0.0, 0.0, 1.0)};
  Archive archive(10);
  archive.offer_all(pop);
  EXPECT_EQ(archive.size(), 2u);  // (5,5) dominated, infeasible rejected
}

TEST(Archive, MembersStayMutuallyNondominated) {
  Archive archive(16);
  // Insert a grid; only the anti-diagonal survives.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      archive.offer(point(static_cast<double>(i), static_cast<double>(j)));
    }
  }
  EXPECT_EQ(archive.size(), 1u);  // (0,0) dominates the whole grid
}

}  // namespace
}  // namespace anadex::moga
