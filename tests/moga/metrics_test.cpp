#include "moga/metrics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

/// Params mirroring the paper's reporting convention: coverage axis 0–5 pF,
/// cost cap 1.1 mW, unit 0.1 mW·pF.
FrontAreaParams paper_params() { return FrontAreaParams{}; }

TEST(FrontArea, EmptyFrontChargesFullCap) {
  const double area = front_area_metric({}, {}, paper_params());
  // cap * range / unit = 1.1e-3 * 5e-12 / 1e-16 = 55.
  EXPECT_NEAR(area, 55.0, 1e-9);
}

TEST(FrontArea, SingleFullCoveragePoint) {
  // One design at (P = 0.4 mW, C = 5 pF) covers everything at 0.4 mW:
  // 0.4e-3 * 5e-12 / 1e-16 = 20 units.
  const std::vector<double> cost{0.4e-3};
  const std::vector<double> cover{5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 20.0, 1e-9);
}

TEST(FrontArea, UncoveredHighLoadsChargedAtCap) {
  // One design at (0.2 mW, 2 pF): loads above 2 pF cost the 1.1 mW cap.
  const std::vector<double> cost{0.2e-3};
  const std::vector<double> cover{2e-12};
  const double expected = (0.2e-3 * 2e-12 + 1.1e-3 * 3e-12) / 1e-16;
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), expected, 1e-9);
}

TEST(FrontArea, TwoStepStaircase) {
  // (0.2 mW, 2 pF) and (0.6 mW, 5 pF):
  //   [0,2] pF at 0.2 mW, (2,5] pF at 0.6 mW.
  const std::vector<double> cost{0.2e-3, 0.6e-3};
  const std::vector<double> cover{2e-12, 5e-12};
  const double expected = (0.2e-3 * 2e-12 + 0.6e-3 * 3e-12) / 1e-16;
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), expected, 1e-9);
}

TEST(FrontArea, InputOrderIrrelevant) {
  const std::vector<double> cost{0.6e-3, 0.2e-3};
  const std::vector<double> cover{5e-12, 2e-12};
  const std::vector<double> cost_r{0.2e-3, 0.6e-3};
  const std::vector<double> cover_r{2e-12, 5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()),
              front_area_metric(cost_r, cover_r, paper_params()), 1e-12);
}

TEST(FrontArea, DominatedPointDoesNotRaiseMetric) {
  const std::vector<double> base_cost{0.3e-3};
  const std::vector<double> base_cover{5e-12};
  const std::vector<double> with_dom_cost{0.3e-3, 0.9e-3};  // worse design, lower C
  const std::vector<double> with_dom_cover{5e-12, 2e-12};
  EXPECT_NEAR(front_area_metric(base_cost, base_cover, paper_params()),
              front_area_metric(with_dom_cost, with_dom_cover, paper_params()), 1e-12);
}

TEST(FrontArea, BetterLowLoadDesignLowersMetric) {
  const std::vector<double> a_cost{0.5e-3};
  const std::vector<double> a_cover{5e-12};
  const std::vector<double> b_cost{0.5e-3, 0.2e-3};
  const std::vector<double> b_cover{5e-12, 2e-12};
  EXPECT_LT(front_area_metric(b_cost, b_cover, paper_params()),
            front_area_metric(a_cost, a_cover, paper_params()));
}

TEST(FrontArea, CostAboveCapIsClamped) {
  const std::vector<double> cost{5.0e-3};  // way above the 1.1 mW cap
  const std::vector<double> cover{5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 55.0, 1e-9);
}

TEST(FrontArea, CoverageBeyondRangeClamped) {
  const std::vector<double> cost{0.4e-3};
  const std::vector<double> cover{9e-12};  // beyond the 5 pF reporting range
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 20.0, 1e-9);
}

TEST(FrontArea, SizesMustMatch) {
  EXPECT_THROW(
      front_area_metric(std::vector<double>{1.0}, std::vector<double>{}, paper_params()),
      PreconditionError);
}

TEST(FrontArea, InvalidParamsRejected) {
  FrontAreaParams p;
  p.unit = 0.0;
  EXPECT_THROW(front_area_metric({}, {}, p), PreconditionError);
}

TEST(Spacing, FewerThanTwoPointsIsZero) {
  EXPECT_EQ(spacing({}), 0.0);
  EXPECT_EQ(spacing({{1.0, 1.0}}), 0.0);
}

TEST(Spacing, UniformFrontHasZeroSpacing) {
  const FrontPoints front{{0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  EXPECT_NEAR(spacing(front), 0.0, 1e-12);
}

TEST(Spacing, IrregularFrontHasPositiveSpacing) {
  const FrontPoints front{{0.0, 3.0}, {0.1, 2.9}, {3.0, 0.0}};
  EXPECT_GT(spacing(front), 0.1);
}

TEST(Coverage, EmptyTargetIsZero) {
  EXPECT_EQ(coverage({{0.0, 0.0}}, {}), 0.0);
}

TEST(Coverage, FullDomination) {
  const FrontPoints a{{0.0, 0.0}};
  const FrontPoints b{{1.0, 1.0}, {2.0, 0.5}};
  EXPECT_EQ(coverage(a, b), 1.0);
}

TEST(Coverage, EqualPointsWeaklyDominate) {
  const FrontPoints a{{1.0, 1.0}};
  const FrontPoints b{{1.0, 1.0}};
  EXPECT_EQ(coverage(a, b), 1.0);
}

TEST(Coverage, PartialCoverageFraction) {
  const FrontPoints a{{1.0, 1.0}};
  const FrontPoints b{{2.0, 2.0}, {0.5, 0.5}};
  EXPECT_EQ(coverage(a, b), 0.5);
}

TEST(Coverage, Asymmetric) {
  const FrontPoints a{{0.0, 0.0}};
  const FrontPoints b{{1.0, 1.0}};
  EXPECT_EQ(coverage(a, b), 1.0);
  EXPECT_EQ(coverage(b, a), 0.0);
}

TEST(GenerationalDistance, ZeroWhenOnReference) {
  const FrontPoints front{{1.0, 2.0}};
  const FrontPoints ref{{1.0, 2.0}, {3.0, 0.0}};
  EXPECT_EQ(generational_distance(front, ref), 0.0);
}

TEST(GenerationalDistance, AverageNearestDistance) {
  const FrontPoints front{{0.0, 0.0}, {4.0, 0.0}};
  const FrontPoints ref{{0.0, 1.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(generational_distance(front, ref), 1.5);
}

TEST(GenerationalDistance, EmptyFrontIsZero) {
  EXPECT_EQ(generational_distance({}, {{0.0, 0.0}}), 0.0);
}

TEST(InvertedGenerationalDistance, PenalizesMissedReferenceRegions) {
  const FrontPoints full{{0.0, 1.0}, {1.0, 0.0}};
  const FrontPoints partial{{0.0, 1.0}};
  const FrontPoints ref{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_LT(inverted_generational_distance(full, ref),
            inverted_generational_distance(partial, ref));
}

TEST(ClusteringFraction, CountsInsideBand) {
  const std::vector<double> values{1.0, 4.2, 4.8, 5.0, 0.5};
  EXPECT_DOUBLE_EQ(clustering_fraction(values, 4.0, 5.0), 0.6);
}

TEST(ClusteringFraction, EmptyValuesIsZero) {
  EXPECT_EQ(clustering_fraction({}, 0.0, 1.0), 0.0);
}

TEST(ClusteringFraction, InvertedBandRejected) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(clustering_fraction(values, 2.0, 1.0), PreconditionError);
}

TEST(ObjectivesOf, ExtractsAllRows) {
  Population pop(3);
  pop[0].eval.objectives = {1.0, 2.0};
  pop[1].eval.objectives = {3.0, 4.0};
  pop[2].eval.objectives = {5.0, 6.0};
  const auto points = objectives_of(pop);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1], (std::vector<double>{3.0, 4.0}));
}

}  // namespace
}  // namespace anadex::moga
