#include "moga/metrics.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

/// Params mirroring the paper's reporting convention: coverage axis 0–5 pF,
/// cost cap 1.1 mW, unit 0.1 mW·pF.
FrontAreaParams paper_params() { return FrontAreaParams{}; }

TEST(FrontArea, EmptyFrontChargesFullCap) {
  const double area = front_area_metric({}, {}, paper_params());
  // cap * range / unit = 1.1e-3 * 5e-12 / 1e-16 = 55.
  EXPECT_NEAR(area, 55.0, 1e-9);
}

TEST(FrontArea, SingleFullCoveragePoint) {
  // One design at (P = 0.4 mW, C = 5 pF) covers everything at 0.4 mW:
  // 0.4e-3 * 5e-12 / 1e-16 = 20 units.
  const std::vector<double> cost{0.4e-3};
  const std::vector<double> cover{5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 20.0, 1e-9);
}

TEST(FrontArea, UncoveredHighLoadsChargedAtCap) {
  // One design at (0.2 mW, 2 pF): loads above 2 pF cost the 1.1 mW cap.
  const std::vector<double> cost{0.2e-3};
  const std::vector<double> cover{2e-12};
  const double expected = (0.2e-3 * 2e-12 + 1.1e-3 * 3e-12) / 1e-16;
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), expected, 1e-9);
}

TEST(FrontArea, TwoStepStaircase) {
  // (0.2 mW, 2 pF) and (0.6 mW, 5 pF):
  //   [0,2] pF at 0.2 mW, (2,5] pF at 0.6 mW.
  const std::vector<double> cost{0.2e-3, 0.6e-3};
  const std::vector<double> cover{2e-12, 5e-12};
  const double expected = (0.2e-3 * 2e-12 + 0.6e-3 * 3e-12) / 1e-16;
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), expected, 1e-9);
}

TEST(FrontArea, InputOrderIrrelevant) {
  const std::vector<double> cost{0.6e-3, 0.2e-3};
  const std::vector<double> cover{5e-12, 2e-12};
  const std::vector<double> cost_r{0.2e-3, 0.6e-3};
  const std::vector<double> cover_r{2e-12, 5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()),
              front_area_metric(cost_r, cover_r, paper_params()), 1e-12);
}

TEST(FrontArea, DominatedPointDoesNotRaiseMetric) {
  const std::vector<double> base_cost{0.3e-3};
  const std::vector<double> base_cover{5e-12};
  const std::vector<double> with_dom_cost{0.3e-3, 0.9e-3};  // worse design, lower C
  const std::vector<double> with_dom_cover{5e-12, 2e-12};
  EXPECT_NEAR(front_area_metric(base_cost, base_cover, paper_params()),
              front_area_metric(with_dom_cost, with_dom_cover, paper_params()), 1e-12);
}

TEST(FrontArea, BetterLowLoadDesignLowersMetric) {
  const std::vector<double> a_cost{0.5e-3};
  const std::vector<double> a_cover{5e-12};
  const std::vector<double> b_cost{0.5e-3, 0.2e-3};
  const std::vector<double> b_cover{5e-12, 2e-12};
  EXPECT_LT(front_area_metric(b_cost, b_cover, paper_params()),
            front_area_metric(a_cost, a_cover, paper_params()));
}

TEST(FrontArea, CostAboveCapIsClamped) {
  const std::vector<double> cost{5.0e-3};  // way above the 1.1 mW cap
  const std::vector<double> cover{5e-12};
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 55.0, 1e-9);
}

TEST(FrontArea, CoverageBeyondRangeClamped) {
  const std::vector<double> cost{0.4e-3};
  const std::vector<double> cover{9e-12};  // beyond the 5 pF reporting range
  EXPECT_NEAR(front_area_metric(cost, cover, paper_params()), 20.0, 1e-9);
}

TEST(FrontArea, SizesMustMatch) {
  EXPECT_THROW(
      front_area_metric(std::vector<double>{1.0}, std::vector<double>{}, paper_params()),
      PreconditionError);
}

TEST(FrontArea, InvalidParamsRejected) {
  FrontAreaParams p;
  p.unit = 0.0;
  EXPECT_THROW(front_area_metric({}, {}, p), PreconditionError);
}

TEST(Spacing, FewerThanTwoPointsIsZero) {
  EXPECT_EQ(spacing({}), 0.0);
  EXPECT_EQ(spacing({{1.0, 1.0}}), 0.0);
}

TEST(Spacing, UniformFrontHasZeroSpacing) {
  const FrontPoints front{{0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  EXPECT_NEAR(spacing(front), 0.0, 1e-12);
}

TEST(Spacing, IrregularFrontHasPositiveSpacing) {
  const FrontPoints front{{0.0, 3.0}, {0.1, 2.9}, {3.0, 0.0}};
  EXPECT_GT(spacing(front), 0.1);
}

TEST(Coverage, EmptyTargetIsZero) {
  EXPECT_EQ(coverage({{0.0, 0.0}}, {}), 0.0);
}

TEST(Coverage, FullDomination) {
  const FrontPoints a{{0.0, 0.0}};
  const FrontPoints b{{1.0, 1.0}, {2.0, 0.5}};
  EXPECT_EQ(coverage(a, b), 1.0);
}

TEST(Coverage, EqualPointsWeaklyDominate) {
  const FrontPoints a{{1.0, 1.0}};
  const FrontPoints b{{1.0, 1.0}};
  EXPECT_EQ(coverage(a, b), 1.0);
}

TEST(Coverage, PartialCoverageFraction) {
  const FrontPoints a{{1.0, 1.0}};
  const FrontPoints b{{2.0, 2.0}, {0.5, 0.5}};
  EXPECT_EQ(coverage(a, b), 0.5);
}

TEST(Coverage, Asymmetric) {
  const FrontPoints a{{0.0, 0.0}};
  const FrontPoints b{{1.0, 1.0}};
  EXPECT_EQ(coverage(a, b), 1.0);
  EXPECT_EQ(coverage(b, a), 0.0);
}

TEST(GenerationalDistance, ZeroWhenOnReference) {
  const FrontPoints front{{1.0, 2.0}};
  const FrontPoints ref{{1.0, 2.0}, {3.0, 0.0}};
  EXPECT_EQ(generational_distance(front, ref), 0.0);
}

TEST(GenerationalDistance, AverageNearestDistance) {
  const FrontPoints front{{0.0, 0.0}, {4.0, 0.0}};
  const FrontPoints ref{{0.0, 1.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(generational_distance(front, ref), 1.5);
}

TEST(GenerationalDistance, EmptyFrontIsZero) {
  EXPECT_EQ(generational_distance({}, {{0.0, 0.0}}), 0.0);
}

TEST(InvertedGenerationalDistance, PenalizesMissedReferenceRegions) {
  const FrontPoints full{{0.0, 1.0}, {1.0, 0.0}};
  const FrontPoints partial{{0.0, 1.0}};
  const FrontPoints ref{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_LT(inverted_generational_distance(full, ref),
            inverted_generational_distance(partial, ref));
}

TEST(ClusteringFraction, CountsInsideBand) {
  const std::vector<double> values{1.0, 4.2, 4.8, 5.0, 0.5};
  EXPECT_DOUBLE_EQ(clustering_fraction(values, 4.0, 5.0), 0.6);
}

TEST(ClusteringFraction, EmptyValuesIsZero) {
  EXPECT_EQ(clustering_fraction({}, 0.0, 1.0), 0.0);
}

TEST(ClusteringFraction, InvertedBandRejected) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(clustering_fraction(values, 2.0, 1.0), PreconditionError);
}

// Regression tests: a single non-finite value from a faulted evaluation
// used to poison aggregate metrics (NaN compares false everywhere, so it
// slipped through filters and surfaced as a NaN metric). All metrics now
// skip-and-count non-finite points.

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FrontArea, NonFinitePointsAreSkippedAndCounted) {
  // Clean front: one design at (0.4 mW, 5 pF) -> area 20 units.
  const std::vector<double> cost{0.4e-3, kNan, 0.2e-3};
  const std::vector<double> cover{5e-12, 3e-12, kInf};
  std::size_t skipped = 0;
  const double area = front_area_metric(cost, cover, paper_params(), &skipped);
  EXPECT_EQ(skipped, 2u);
  EXPECT_TRUE(std::isfinite(area));
  EXPECT_NEAR(area, 20.0, 1e-9);
}

TEST(FrontArea, AllNonFiniteEqualsEmptyFront) {
  const std::vector<double> cost{kNan, kInf};
  const std::vector<double> cover{1e-12, kNan};
  std::size_t skipped = 0;
  const double area = front_area_metric(cost, cover, paper_params(), &skipped);
  EXPECT_EQ(skipped, 2u);
  EXPECT_NEAR(area, front_area_metric({}, {}, paper_params()), 1e-12);
}

TEST(DropNonFinitePoints, RemovesAndCounts) {
  FrontPoints points{{1.0, 2.0}, {kNan, 2.0}, {1.0, kInf}, {3.0, 4.0}};
  EXPECT_EQ(drop_non_finite_points(points), 2u);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(points[1], (std::vector<double>{3.0, 4.0}));
}

TEST(Spacing, IgnoresNonFinitePoints) {
  // Uniform front plus a NaN point: spacing must stay 0, not go NaN.
  const FrontPoints front{{0.0, 2.0}, {1.0, 1.0}, {2.0, 0.0}, {kNan, 1.0}};
  EXPECT_EQ(spacing(front), 0.0);
}

TEST(Coverage, IgnoresNonFinitePoints) {
  const FrontPoints a{{0.0, 0.0}, {kNan, kNan}};
  const FrontPoints b{{1.0, 1.0}, {kNan, 2.0}};
  // The finite a-point dominates the only finite b-point.
  EXPECT_DOUBLE_EQ(coverage(a, b), 1.0);
}

TEST(GenerationalDistance, IgnoresNonFinitePoints) {
  const FrontPoints front{{1.0, 1.0}, {kNan, 0.0}};
  const FrontPoints reference{{1.0, 1.0}, {kInf, kInf}};
  EXPECT_DOUBLE_EQ(generational_distance(front, reference), 0.0);
  EXPECT_DOUBLE_EQ(inverted_generational_distance(front, reference), 0.0);
}

TEST(ClusteringFraction, ExcludesNonFiniteFromBothSides) {
  const std::vector<double> values{4.5, 4.2, 0.5, kNan, kInf};
  // 2 of the 3 finite values are in-band; non-finite counts toward neither.
  EXPECT_DOUBLE_EQ(clustering_fraction(values, 4.0, 5.0), 2.0 / 3.0);
}

TEST(Hypervolume, NonFinitePointsContributeNothing) {
  const FrontPoints front{{0.5, 0.5}, {kNan, 0.1}, {0.1, kInf}};
  const std::vector<double> ref{1.0, 1.0};
  EXPECT_DOUBLE_EQ(hypervolume(front, ref), 0.25);
}

TEST(ObjectivesOf, ExtractsAllRows) {
  Population pop(3);
  pop[0].eval.objectives = {1.0, 2.0};
  pop[1].eval.objectives = {3.0, 4.0};
  pop[2].eval.objectives = {5.0, 6.0};
  const auto points = objectives_of(pop);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1], (std::vector<double>{3.0, 4.0}));
}

}  // namespace
}  // namespace anadex::moga
