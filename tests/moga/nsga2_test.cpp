#include "moga/nsga2.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "moga/metrics.hpp"
#include "problems/analytic.hpp"

namespace anadex::moga {
namespace {

Nsga2Params quick_params(std::size_t generations = 100, std::uint64_t seed = 1) {
  Nsga2Params p;
  p.population_size = 60;
  p.generations = generations;
  p.seed = seed;
  return p;
}

TEST(Nsga2, RejectsOddOrTinyPopulation) {
  const auto problem = problems::make_sch();
  Nsga2Params p = quick_params();
  p.population_size = 3;
  EXPECT_THROW(run_nsga2(*problem, p), PreconditionError);
  p.population_size = 7;
  EXPECT_THROW(run_nsga2(*problem, p), PreconditionError);
}

TEST(Nsga2, PopulationSizeInvariant) {
  const auto problem = problems::make_sch();
  const auto result = run_nsga2(*problem, quick_params(10));
  EXPECT_EQ(result.population.size(), 60u);
}

TEST(Nsga2, EvaluationCountIsInitPlusPerGeneration) {
  const auto problem = problems::make_sch();
  const auto result = run_nsga2(*problem, quick_params(10));
  EXPECT_EQ(result.evaluations, 60u + 10u * 60u);
  EXPECT_EQ(result.generations_run, 10u);
}

TEST(Nsga2, DeterministicForFixedSeed) {
  const auto problem = problems::make_zdt1(10);
  const auto a = run_nsga2(*problem, quick_params(30, 42));
  const auto b = run_nsga2(*problem, quick_params(30, 42));
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genes, b.front[i].genes);
  }
}

TEST(Nsga2, DifferentSeedsDiffer) {
  const auto problem = problems::make_zdt1(10);
  const auto a = run_nsga2(*problem, quick_params(30, 1));
  const auto b = run_nsga2(*problem, quick_params(30, 2));
  bool any_difference = a.front.size() != b.front.size();
  for (std::size_t i = 0; !any_difference && i < a.front.size(); ++i) {
    any_difference = a.front[i].genes != b.front[i].genes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Nsga2, CallbackSeesEveryGeneration) {
  const auto problem = problems::make_sch();
  std::size_t calls = 0;
  std::size_t last_gen = 0;
  run_nsga2(*problem, quick_params(25), [&](std::size_t gen, const Population& pop) {
    ++calls;
    last_gen = gen;
    EXPECT_EQ(pop.size(), 60u);
  });
  EXPECT_EQ(calls, 25u);
  EXPECT_EQ(last_gen, 24u);
}

TEST(Nsga2, SchFrontConvergesToKnownCurve) {
  // SCH Pareto set: x in [0, 2]; front: f2 = (sqrt(f1) - 2)^2.
  const auto problem = problems::make_sch();
  const auto result = run_nsga2(*problem, quick_params(150));
  ASSERT_GT(result.front.size(), 10u);
  for (const auto& ind : result.front) {
    EXPECT_GE(ind.genes[0], -0.1);
    EXPECT_LE(ind.genes[0], 2.1);
    const double f1 = ind.eval.objectives[0];
    const double f2 = ind.eval.objectives[1];
    const double expected_f2 = (std::sqrt(std::max(f1, 0.0)) - 2.0) * (std::sqrt(std::max(f1, 0.0)) - 2.0);
    EXPECT_NEAR(f2, expected_f2, 0.05);
  }
}

TEST(Nsga2, Zdt1ApproachesTrueFront) {
  const auto problem = problems::make_zdt1(12);
  Nsga2Params p;
  p.population_size = 100;
  p.generations = 250;
  p.seed = 3;
  const auto result = run_nsga2(*problem, p);

  // Reference front: f2 = 1 - sqrt(f1), f1 in [0, 1].
  FrontPoints reference;
  for (int i = 0; i <= 100; ++i) {
    const double f1 = i / 100.0;
    reference.push_back({f1, 1.0 - std::sqrt(f1)});
  }
  const double gd = generational_distance(objectives_of(result.front), reference);
  EXPECT_LT(gd, 0.05);
  const double igd = inverted_generational_distance(objectives_of(result.front), reference);
  EXPECT_LT(igd, 0.15);  // diversity: the whole front is approximated
}

TEST(Nsga2, ConstrainedProblemFindsOnlyFeasibleFront) {
  const auto problem = problems::make_constr();
  Nsga2Params p;
  p.population_size = 80;
  p.generations = 120;
  p.seed = 5;
  const auto result = run_nsga2(*problem, p);
  ASSERT_GT(result.front.size(), 5u);
  for (const auto& ind : result.front) {
    EXPECT_TRUE(ind.feasible());
  }
}

TEST(Nsga2, TnkConstraintsRespected) {
  const auto problem = problems::make_tnk();
  Nsga2Params p;
  p.population_size = 80;
  p.generations = 150;
  p.seed = 7;
  const auto result = run_nsga2(*problem, p);
  ASSERT_GT(result.front.size(), 3u);
  for (const auto& ind : result.front) {
    EXPECT_TRUE(ind.feasible());
    // TNK front lies inside the ring x^2 + y^2 ~ 1 +- 0.1 cos(16 atan).
    const double r2 = ind.genes[0] * ind.genes[0] + ind.genes[1] * ind.genes[1];
    EXPECT_GT(r2, 0.6);
    EXPECT_LT(r2, 1.35);
  }
}

TEST(ExtractGlobalFront, KeepsOnlyFeasibleNondominated) {
  Population pop(4);
  pop[0].eval.objectives = {1.0, 1.0};
  pop[1].eval.objectives = {2.0, 2.0};                       // dominated
  pop[2].eval.objectives = {0.5, 3.0};                       // trade-off
  pop[3].eval.objectives = {0.0, 0.0};
  pop[3].eval.violations = {1.0};                            // infeasible
  const auto front = extract_global_front(pop);
  ASSERT_EQ(front.size(), 2u);
  for (const auto& ind : front) {
    EXPECT_TRUE(ind.feasible());
    EXPECT_NE(ind.eval.objectives, (std::vector<double>{2.0, 2.0}));
  }
}

TEST(ExtractGlobalFront, EmptyPopulationYieldsEmptyFront) {
  EXPECT_TRUE(extract_global_front({}).empty());
}

TEST(ExtractGlobalFront, AllInfeasibleYieldsEmptyFront) {
  Population pop(2);
  pop[0].eval.objectives = {1.0, 1.0};
  pop[0].eval.violations = {0.5};
  pop[1].eval.objectives = {2.0, 2.0};
  pop[1].eval.violations = {0.1};
  EXPECT_TRUE(extract_global_front(pop).empty());
}

/// Convergence sweep over the unconstrained suite: NSGA-II must achieve a
/// small generational distance on every problem.
struct SuiteCase {
  const char* name;
  std::size_t generations;
  double gd_limit;
};

class Nsga2Suite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(Nsga2Suite, FrontIsMutuallyNondominated) {
  const auto param = GetParam();
  std::unique_ptr<Problem> problem;
  const std::string name = param.name;
  if (name == "SCH") problem = problems::make_sch();
  else if (name == "FON") problem = problems::make_fon();
  else if (name == "KUR") problem = problems::make_kur();
  else if (name == "POL") problem = problems::make_pol();
  else if (name == "ZDT1") problem = problems::make_zdt1(10);
  else if (name == "ZDT2") problem = problems::make_zdt2(10);
  else if (name == "ZDT3") problem = problems::make_zdt3(10);
  else if (name == "ZDT6") problem = problems::make_zdt6(10);
  ASSERT_NE(problem, nullptr);

  Nsga2Params p;
  p.population_size = 80;
  p.generations = param.generations;
  p.seed = 11;
  const auto result = run_nsga2(*problem, p);
  ASSERT_GT(result.front.size(), 2u);
  for (const auto& a : result.front) {
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(dominates(a.eval.objectives, b.eval.objectives));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Problems, Nsga2Suite,
                         ::testing::Values(SuiteCase{"SCH", 60, 0.05},
                                           SuiteCase{"FON", 80, 0.05},
                                           SuiteCase{"KUR", 100, 0.1},
                                           SuiteCase{"POL", 80, 0.1},
                                           SuiteCase{"ZDT1", 150, 0.05},
                                           SuiteCase{"ZDT2", 150, 0.05},
                                           SuiteCase{"ZDT3", 150, 0.1},
                                           SuiteCase{"ZDT6", 200, 0.2}));

}  // namespace
}  // namespace anadex::moga
