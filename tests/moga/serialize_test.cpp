#include "moga/serialize.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "moga/nsga2.hpp"
#include "moga/operators.hpp"
#include "problems/analytic.hpp"

namespace anadex::moga {
namespace {

Population sample_population() {
  Population pop(3);
  pop[0].genes = {1.0, 2.0};
  pop[0].eval.objectives = {0.5, 0.25};
  pop[1].genes = {-3.5, 4.0};
  pop[1].eval.objectives = {1.0, 9.0};
  pop[1].eval.violations = {0.1, 0.0};
  pop[2].genes = {1e-12};
  pop[2].eval.objectives = {7.0};
  return pop;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Population original = sample_population();
  std::stringstream stream;
  save_population(stream, original);
  const Population loaded = load_population(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].genes, original[i].genes);
    EXPECT_EQ(loaded[i].eval.objectives, original[i].eval.objectives);
    EXPECT_EQ(loaded[i].eval.violations, original[i].eval.violations);
  }
}

TEST(Serialize, EmptyPopulationRoundTrips) {
  std::stringstream stream;
  save_population(stream, {});
  EXPECT_TRUE(load_population(stream).empty());
}

TEST(Serialize, FullPrecisionSurvives) {
  Population pop(1);
  pop[0].genes = {0.1 + 0.2};  // a value with a long binary expansion
  pop[0].eval.objectives = {1.0 / 3.0};
  std::stringstream stream;
  save_population(stream, pop);
  const Population loaded = load_population(stream);
  EXPECT_EQ(loaded[0].genes[0], pop[0].genes[0]);
  EXPECT_EQ(loaded[0].eval.objectives[0], pop[0].eval.objectives[0]);
}

TEST(Serialize, RejectsMissingHeader) {
  std::stringstream stream("individual 1 1 0\ngenes 1\nobjectives 1\nviolations\n");
  EXPECT_THROW(load_population(stream), PreconditionError);
}

TEST(Serialize, RejectsTruncatedRecord) {
  std::stringstream stream("anadex-population v1\nindividual 2 1 0\ngenes 1 2\n");
  EXPECT_THROW(load_population(stream), PreconditionError);
}

TEST(Serialize, RejectsNonNumericValues) {
  std::stringstream stream(
      "anadex-population v1\nindividual 1 1 0\ngenes abc\nobjectives 1\nviolations\n");
  EXPECT_THROW(load_population(stream), PreconditionError);
}

TEST(Serialize, RejectsWrongKeyword) {
  std::stringstream stream(
      "anadex-population v1\nindividual 1 1 0\nchromosome 1\nobjectives 1\nviolations\n");
  EXPECT_THROW(load_population(stream), PreconditionError);
}

TEST(Serialize, OptimizedFrontRoundTripsThroughCheckpoint) {
  // The practical use: persist an NSGA-II front, reload it, and verify the
  // reloaded genomes re-evaluate to the stored objectives.
  const auto problem = problems::make_zdt1(6);
  Nsga2Params params;
  params.population_size = 24;
  params.generations = 30;
  params.seed = 4;
  const auto result = run_nsga2(*problem, params);

  std::stringstream stream;
  save_population(stream, result.front);
  const Population loaded = load_population(stream);
  ASSERT_EQ(loaded.size(), result.front.size());
  for (const auto& ind : loaded) {
    const auto fresh = problem->evaluated(ind.genes);
    ASSERT_EQ(fresh.objectives.size(), ind.eval.objectives.size());
    for (std::size_t k = 0; k < fresh.objectives.size(); ++k) {
      EXPECT_DOUBLE_EQ(fresh.objectives[k], ind.eval.objectives[k]);
    }
  }
}

}  // namespace
}  // namespace anadex::moga
