#include "moga/operators.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

std::vector<VariableBound> unit_bounds(std::size_t n) {
  return std::vector<VariableBound>(n, {0.0, 1.0});
}

TEST(VariationParams, DefaultMutationIsOneOverN) {
  VariationParams p;
  EXPECT_DOUBLE_EQ(p.effective_mutation_probability(10), 0.1);
  EXPECT_DOUBLE_EQ(p.effective_mutation_probability(4), 0.25);
}

TEST(VariationParams, ExplicitMutationProbabilityClampedToOne) {
  VariationParams p;
  p.mutation_probability = 3.0;
  EXPECT_DOUBLE_EQ(p.effective_mutation_probability(10), 1.0);
}

TEST(VariationParams, ZeroVariablesRejected) {
  VariationParams p;
  EXPECT_THROW(p.effective_mutation_probability(0), PreconditionError);
}

TEST(RandomGenome, WithinBounds) {
  Rng rng(1);
  const std::vector<VariableBound> bounds{{-1.0, 1.0}, {5.0, 6.0}, {0.0, 0.0}};
  for (int i = 0; i < 200; ++i) {
    const auto g = random_genome(bounds, rng);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_GE(g[0], -1.0);
    EXPECT_LT(g[0], 1.0);
    EXPECT_GE(g[1], 5.0);
    EXPECT_LT(g[1], 6.0);
    EXPECT_EQ(g[2], 0.0);
  }
}

TEST(RandomGenome, InvertedBoundRejected) {
  Rng rng(1);
  const std::vector<VariableBound> bounds{{1.0, -1.0}};
  EXPECT_THROW(random_genome(bounds, rng), PreconditionError);
}

TEST(Sbx, GenomeSizeMustMatchBounds) {
  Rng rng(1);
  VariationParams params;
  std::vector<double> a{0.5};
  std::vector<double> b{0.5, 0.5};
  EXPECT_THROW(sbx_crossover(unit_bounds(2), params, a, b, rng), PreconditionError);
}

TEST(Sbx, ZeroProbabilityLeavesParentsUnchanged) {
  Rng rng(2);
  VariationParams params;
  params.crossover_probability = 0.0;
  std::vector<double> a{0.2, 0.8};
  std::vector<double> b{0.6, 0.4};
  sbx_crossover(unit_bounds(2), params, a, b, rng);
  EXPECT_EQ(a, (std::vector<double>{0.2, 0.8}));
  EXPECT_EQ(b, (std::vector<double>{0.6, 0.4}));
}

TEST(Sbx, IdenticalParentsStayIdentical) {
  Rng rng(3);
  VariationParams params;
  params.crossover_probability = 1.0;
  std::vector<double> a{0.5, 0.5};
  std::vector<double> b{0.5, 0.5};
  sbx_crossover(unit_bounds(2), params, a, b, rng);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a[0], 0.5);
}

TEST(Mutation, GenomeSizeMustMatchBounds) {
  Rng rng(1);
  VariationParams params;
  std::vector<double> g{0.5};
  EXPECT_THROW(polynomial_mutation(unit_bounds(2), params, g, rng), PreconditionError);
}

TEST(Mutation, ZeroProbabilityIsIdentity) {
  Rng rng(4);
  VariationParams params;
  params.mutation_probability = 0.0;
  std::vector<double> g{0.3, 0.7};
  polynomial_mutation(unit_bounds(2), params, g, rng);
  EXPECT_EQ(g, (std::vector<double>{0.3, 0.7}));
}

TEST(Mutation, CertainMutationChangesGenes) {
  Rng rng(5);
  VariationParams params;
  params.mutation_probability = 1.0;
  std::vector<double> g{0.3, 0.7};
  const auto before = g;
  polynomial_mutation(unit_bounds(2), params, g, rng);
  EXPECT_NE(g, before);
}

TEST(Mutation, DegenerateBoundGeneUntouched) {
  Rng rng(6);
  VariationParams params;
  params.mutation_probability = 1.0;
  const std::vector<VariableBound> bounds{{2.0, 2.0}};
  std::vector<double> g{2.0};
  polynomial_mutation(bounds, params, g, rng);
  EXPECT_EQ(g[0], 2.0);
}

/// Property sweep: operators always respect bounds, for many seeds and
/// distribution indices.
struct OperatorPropertyCase {
  std::uint64_t seed;
  double eta;
};

class OperatorProperty : public ::testing::TestWithParam<OperatorPropertyCase> {};

TEST_P(OperatorProperty, SbxChildrenStayWithinBounds) {
  const auto param = GetParam();
  Rng rng(param.seed);
  VariationParams params;
  params.crossover_probability = 1.0;
  params.crossover_eta = param.eta;
  const std::vector<VariableBound> bounds{{-2.0, 3.0}, {0.0, 1e-6}, {1e3, 1e9}};
  for (int trial = 0; trial < 300; ++trial) {
    auto a = random_genome(bounds, rng);
    auto b = random_genome(bounds, rng);
    sbx_crossover(bounds, params, a, b, rng);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      ASSERT_GE(a[i], bounds[i].lower);
      ASSERT_LE(a[i], bounds[i].upper);
      ASSERT_GE(b[i], bounds[i].lower);
      ASSERT_LE(b[i], bounds[i].upper);
      ASSERT_TRUE(std::isfinite(a[i]));
      ASSERT_TRUE(std::isfinite(b[i]));
    }
  }
}

TEST_P(OperatorProperty, MutationStaysWithinBounds) {
  const auto param = GetParam();
  Rng rng(param.seed);
  VariationParams params;
  params.mutation_probability = 1.0;
  params.mutation_eta = param.eta;
  const std::vector<VariableBound> bounds{{-5.0, -1.0}, {0.0, 1.0}, {1e-12, 5e-12}};
  for (int trial = 0; trial < 300; ++trial) {
    auto g = random_genome(bounds, rng);
    polynomial_mutation(bounds, params, g, rng);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      ASSERT_GE(g[i], bounds[i].lower);
      ASSERT_LE(g[i], bounds[i].upper);
      ASSERT_TRUE(std::isfinite(g[i]));
    }
  }
}

TEST_P(OperatorProperty, SbxPreservesParentMeanOnAverage) {
  const auto param = GetParam();
  Rng rng(param.seed);
  VariationParams params;
  params.crossover_probability = 1.0;
  params.crossover_eta = param.eta;
  const std::vector<VariableBound> bounds{{0.0, 1.0}};
  double child_sum = 0.0;
  double parent_sum = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<double> a{0.3};
    std::vector<double> b{0.7};
    parent_sum += a[0] + b[0];
    sbx_crossover(bounds, params, a, b, rng);
    child_sum += a[0] + b[0];
  }
  // SBX is (approximately) mean-preserving; bounded truncation introduces a
  // small bias only near the box edges.
  EXPECT_NEAR(child_sum / parent_sum, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEtas, OperatorProperty,
    ::testing::Values(OperatorPropertyCase{1, 2.0}, OperatorPropertyCase{2, 15.0},
                      OperatorPropertyCase{3, 30.0}, OperatorPropertyCase{99, 15.0},
                      OperatorPropertyCase{123, 5.0}, OperatorPropertyCase{7, 50.0}));

}  // namespace
}  // namespace anadex::moga
