#include "moga/dominance.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::moga {
namespace {

Individual make_ind(std::vector<double> objs, std::vector<double> violations = {}) {
  Individual ind;
  ind.eval.objectives = std::move(objs);
  ind.eval.violations = std::move(violations);
  return ind;
}

TEST(Dominance, StrictlyBetterEverywhereDominates) {
  EXPECT_TRUE(dominates(std::vector{1.0, 1.0}, std::vector{2.0, 2.0}));
}

TEST(Dominance, BetterInOneEqualElsewhereDominates) {
  EXPECT_TRUE(dominates(std::vector{1.0, 2.0}, std::vector{2.0, 2.0}));
}

TEST(Dominance, EqualVectorsDoNotDominate) {
  EXPECT_FALSE(dominates(std::vector{1.0, 2.0}, std::vector{1.0, 2.0}));
}

TEST(Dominance, TradeOffDoesNotDominateEitherWay) {
  EXPECT_FALSE(dominates(std::vector{1.0, 3.0}, std::vector{2.0, 2.0}));
  EXPECT_FALSE(dominates(std::vector{2.0, 2.0}, std::vector{1.0, 3.0}));
}

TEST(Dominance, WorseDoesNotDominate) {
  EXPECT_FALSE(dominates(std::vector{3.0, 3.0}, std::vector{2.0, 2.0}));
}

TEST(Dominance, SingleObjective) {
  EXPECT_TRUE(dominates(std::vector{1.0}, std::vector{2.0}));
  EXPECT_FALSE(dominates(std::vector{2.0}, std::vector{1.0}));
}

TEST(Dominance, MismatchedSizesRejected) {
  EXPECT_THROW(dominates(std::vector{1.0}, std::vector{1.0, 2.0}), PreconditionError);
}

TEST(Dominance, EmptyVectorsRejected) {
  EXPECT_THROW(dominates(std::vector<double>{}, std::vector<double>{}), PreconditionError);
}

TEST(ConstrainedDominance, FeasibleBeatsInfeasible) {
  const Individual feasible = make_ind({100.0, 100.0}, {0.0});
  const Individual infeasible = make_ind({0.0, 0.0}, {0.5});
  EXPECT_TRUE(constrained_dominates(feasible, infeasible));
  EXPECT_FALSE(constrained_dominates(infeasible, feasible));
}

TEST(ConstrainedDominance, LessViolationWinsAmongInfeasible) {
  const Individual a = make_ind({9.0, 9.0}, {0.1});
  const Individual b = make_ind({0.0, 0.0}, {0.2});
  EXPECT_TRUE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(b, a));
}

TEST(ConstrainedDominance, EqualViolationNeitherDominates) {
  const Individual a = make_ind({1.0, 1.0}, {0.3});
  const Individual b = make_ind({2.0, 2.0}, {0.3});
  EXPECT_FALSE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(b, a));
}

TEST(ConstrainedDominance, FeasiblePairFallsBackToPareto) {
  const Individual a = make_ind({1.0, 1.0}, {0.0});
  const Individual b = make_ind({2.0, 2.0}, {0.0});
  EXPECT_TRUE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(b, a));
}

TEST(ConstrainedDominance, UnconstrainedProblemsUsePareto) {
  const Individual a = make_ind({1.0, 3.0});
  const Individual b = make_ind({2.0, 2.0});
  EXPECT_FALSE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(b, a));
}

TEST(ConstrainedDominance, ViolationSumAcrossConstraints) {
  const Individual a = make_ind({1.0}, {0.1, 0.1});  // total 0.2
  const Individual b = make_ind({1.0}, {0.25, 0.0}); // total 0.25
  EXPECT_TRUE(constrained_dominates(a, b));
}

}  // namespace
}  // namespace anadex::moga
