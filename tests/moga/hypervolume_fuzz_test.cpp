// Property/fuzz tests: the exact hypervolume must agree with a Monte-Carlo
// estimate of the dominated region, for random fronts in 2-D and 3-D, and
// must obey its structural laws (monotonicity, union bounds).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "moga/hypervolume.hpp"

namespace anadex::moga {
namespace {

/// Monte-Carlo estimate of the dominated volume inside the reference box.
double mc_hypervolume(const FrontPoints& front, const std::vector<double>& reference,
                      std::size_t samples, Rng& rng) {
  std::size_t dominated = 0;
  std::vector<double> point(reference.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t d = 0; d < reference.size(); ++d) {
      point[d] = rng.uniform(0.0, reference[d]);
    }
    for (const auto& p : front) {
      bool dominates_sample = true;
      for (std::size_t d = 0; d < reference.size(); ++d) {
        if (p[d] > point[d]) {
          dominates_sample = false;
          break;
        }
      }
      if (dominates_sample) {
        ++dominated;
        break;
      }
    }
  }
  double box = 1.0;
  for (double r : reference) box *= r;
  return box * static_cast<double>(dominated) / static_cast<double>(samples);
}

FrontPoints random_front(std::size_t n, std::size_t dim, Rng& rng) {
  FrontPoints front;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.uniform(0.0, 1.0);
    front.push_back(std::move(p));
  }
  return front;
}

class HypervolumeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HypervolumeFuzz, MatchesMonteCarloIn2d) {
  Rng rng(GetParam());
  const std::vector<double> reference{1.0, 1.0};
  for (int trial = 0; trial < 5; ++trial) {
    const auto front = random_front(8, 2, rng);
    const double exact = hypervolume(front, reference);
    const double estimate = mc_hypervolume(front, reference, 60000, rng);
    EXPECT_NEAR(exact, estimate, 0.015) << "trial " << trial;
  }
}

TEST_P(HypervolumeFuzz, MatchesMonteCarloIn3d) {
  Rng rng(GetParam() + 1000);
  const std::vector<double> reference{1.0, 1.0, 1.0};
  for (int trial = 0; trial < 3; ++trial) {
    const auto front = random_front(6, 3, rng);
    const double exact = hypervolume(front, reference);
    const double estimate = mc_hypervolume(front, reference, 60000, rng);
    EXPECT_NEAR(exact, estimate, 0.015) << "trial " << trial;
  }
}

TEST_P(HypervolumeFuzz, AddingAPointNeverDecreasesVolume) {
  Rng rng(GetParam() + 2000);
  const std::vector<double> reference{1.0, 1.0};
  auto front = random_front(6, 2, rng);
  const double before = hypervolume(front, reference);
  front.push_back({rng.uniform(), rng.uniform()});
  const double after = hypervolume(front, reference);
  EXPECT_GE(after, before - 1e-12);
}

TEST_P(HypervolumeFuzz, BoundedByUnionOfBoxesAndReferenceBox) {
  Rng rng(GetParam() + 3000);
  const std::vector<double> reference{1.0, 1.0};
  const auto front = random_front(8, 2, rng);
  const double hv = hypervolume(front, reference);
  double largest_single = 0.0;
  double sum_of_boxes = 0.0;
  for (const auto& p : front) {
    const double box = (1.0 - p[0]) * (1.0 - p[1]);
    largest_single = std::max(largest_single, box);
    sum_of_boxes += box;
  }
  EXPECT_GE(hv, largest_single - 1e-12);  // contains every member box
  EXPECT_LE(hv, sum_of_boxes + 1e-12);    // union bounded by the sum
  EXPECT_LE(hv, 1.0 + 1e-12);             // and by the reference box
}

TEST_P(HypervolumeFuzz, PermutationInvariant) {
  Rng rng(GetParam() + 4000);
  const std::vector<double> reference{1.0, 1.0, 1.0};
  auto front = random_front(7, 3, rng);
  const double a = hypervolume(front, reference);
  std::shuffle(front.begin(), front.end(), rng);
  const double b = hypervolume(front, reference);
  EXPECT_NEAR(a, b, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace anadex::moga
