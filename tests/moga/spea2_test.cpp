#include "moga/spea2.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "moga/metrics.hpp"
#include "problems/analytic.hpp"

namespace anadex::moga {
namespace {

Spea2Params quick_params(std::size_t generations = 60, std::uint64_t seed = 3) {
  Spea2Params p;
  p.population_size = 40;
  p.archive_size = 40;
  p.generations = generations;
  p.seed = seed;
  return p;
}

TEST(Spea2, ValidatesParameters) {
  const auto problem = problems::make_sch();
  Spea2Params p = quick_params();
  p.population_size = 5;
  EXPECT_THROW(run_spea2(*problem, p), PreconditionError);
  p = quick_params();
  p.archive_size = 1;
  EXPECT_THROW(run_spea2(*problem, p), PreconditionError);
}

TEST(Spea2, ArchiveSizeRespected) {
  const auto problem = problems::make_sch();
  const auto result = run_spea2(*problem, quick_params());
  EXPECT_LE(result.archive.size(), 40u);
  EXPECT_GE(result.archive.size(), 2u);
}

TEST(Spea2, EvaluationAccounting) {
  const auto problem = problems::make_sch();
  const auto result = run_spea2(*problem, quick_params(10));
  EXPECT_EQ(result.evaluations, 40u + 10u * 40u);
  EXPECT_EQ(result.generations_run, 10u);
}

TEST(Spea2, FrontIsNondominated) {
  const auto problem = problems::make_sch();
  const auto result = run_spea2(*problem, quick_params());
  ASSERT_GT(result.front.size(), 3u);
  for (const auto& a : result.front) {
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(Spea2, DeterministicPerSeed) {
  const auto problem = problems::make_sch();
  const auto a = run_spea2(*problem, quick_params());
  const auto b = run_spea2(*problem, quick_params());
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genes, b.front[i].genes);
  }
}

TEST(Spea2, SchConvergesToKnownFront) {
  const auto problem = problems::make_sch();
  const auto result = run_spea2(*problem, quick_params(120));
  for (const auto& ind : result.front) {
    const double f1 = ind.eval.objectives[0];
    const double f2 = ind.eval.objectives[1];
    const double expected =
        (std::sqrt(std::max(f1, 0.0)) - 2.0) * (std::sqrt(std::max(f1, 0.0)) - 2.0);
    EXPECT_NEAR(f2, expected, 0.25);
  }
}

TEST(Spea2, Zdt1GenerationalDistanceSmall) {
  const auto problem = problems::make_zdt1(10);
  Spea2Params p = quick_params(200);
  p.population_size = 60;
  p.archive_size = 60;
  const auto result = run_spea2(*problem, p);
  FrontPoints reference;
  for (int i = 0; i <= 100; ++i) {
    const double f1 = i / 100.0;
    reference.push_back({f1, 1.0 - std::sqrt(f1)});
  }
  EXPECT_LT(generational_distance(objectives_of(result.front), reference), 0.1);
}

TEST(Spea2, ConstrainedProblemStaysFeasible) {
  const auto problem = problems::make_constr();
  const auto result = run_spea2(*problem, quick_params(100));
  ASSERT_GT(result.front.size(), 2u);
  for (const auto& ind : result.front) EXPECT_TRUE(ind.feasible());
}

TEST(Spea2, CallbackSeesArchive) {
  const auto problem = problems::make_sch();
  std::size_t calls = 0;
  run_spea2(*problem, quick_params(15), [&](std::size_t, const Population& archive) {
    ++calls;
    EXPECT_LE(archive.size(), 40u);
  });
  EXPECT_EQ(calls, 15u);
}

}  // namespace
}  // namespace anadex::moga
