// StatsSnapshot: ordered JSON serialization and atomic publication.
#include "obs/stats_snapshot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace anadex::obs {
namespace {

TEST(StatsSnapshot, SerializesInInsertionOrder) {
  StatsSnapshot snap;
  snap.set("schema", std::string_view("anadex-serve-stats/v1"));
  snap.set("admitted", std::uint64_t{4});
  snap.set("cache_hit_rate", 0.25);
  snap.set("draining", true);
  EXPECT_EQ(snap.to_json(),
            "{\"schema\":\"anadex-serve-stats/v1\",\"admitted\":4,"
            "\"cache_hit_rate\":0.25,\"draining\":true}\n");
}

TEST(StatsSnapshot, ResettingAKeyUpdatesInPlace) {
  StatsSnapshot snap;
  snap.set("a", std::uint64_t{1});
  snap.set("b", std::uint64_t{2});
  snap.set("a", std::uint64_t{9});       // same key: position kept
  snap.set("b", 0.5);                    // type may change too
  EXPECT_EQ(snap.to_json(), "{\"a\":9,\"b\":0.5}\n");
}

TEST(StatsSnapshot, EscapesStringsLikeTheTraceWriter) {
  StatsSnapshot snap;
  snap.set("msg", std::string_view("say \"hi\"\n"));
  EXPECT_EQ(snap.to_json(), "{\"msg\":\"say \\\"hi\\\"\\n\"}\n");
}

TEST(StatsSnapshot, WritesAtomically) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(testing::TempDir()) / "anadex_stats_snap.json";
  fs::remove(path);

  StatsSnapshot snap;
  snap.set("value", std::uint64_t{1});
  snap.write(path);
  snap.set("value", std::uint64_t{2});
  snap.write(path);  // atomic replace of an existing file

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "{\"value\":2}");
  EXPECT_FALSE(fs::exists(path.string() + ".tmp")) << "temp file left behind";
}

TEST(StatsSnapshot, EmptySnapshotIsAnEmptyObject) {
  EXPECT_EQ(StatsSnapshot{}.to_json(), "{}\n");
}

}  // namespace
}  // namespace anadex::obs
