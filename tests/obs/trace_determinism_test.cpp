// Tracing is pure observation. These tests pin the three contracts of
// docs/observability.md on a real MESACGA exploration:
//   1. results (front, evaluation count) and checkpoint bytes are identical
//      with tracing off or at eval level, for 1 and 8 worker threads;
//   2. a gen-level trace is byte-identical across thread counts;
//   3. the gen-level trace carries the paper's telemetry (partition
//      occupancy, T_A, hypervolume).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "expt/runner.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::expt {
namespace {

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

RunSettings small_mesacga() {
  RunSettings s;
  s.algo = Algo::MESACGA;
  s.spec = problems::spec_suite().front();
  s.population = 16;
  s.generations = 40;
  s.phase1_cap = 10;
  s.mesacga_schedule = {6, 3, 1};
  s.seed = 11;
  return s;
}

bool same_front(const std::vector<FrontSample>& a, const std::vector<FrontSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].power_w != b[i].power_w || a[i].cload_f != b[i].cload_f) return false;
  }
  return true;
}

TEST(TraceDeterminism, ResultsAndCheckpointsIdenticalTracedVsUntraced) {
  const std::string dir = testing::TempDir();

  struct Variant {
    std::size_t threads;
    bool traced;
  };
  const Variant variants[] = {{1, false}, {1, true}, {8, false}, {8, true}};

  std::vector<RunOutcome> outcomes;
  std::vector<std::string> checkpoints;
  for (const Variant& v : variants) {
    RunSettings s = small_mesacga();
    s.threads = v.threads;
    const std::string tag =
        std::to_string(v.threads) + (v.traced ? "t" : "u");
    s.checkpoint_path = dir + "anadex_trace_det_cp_" + tag + ".txt";
    s.checkpoint_every = 10;
    if (v.traced) {
      s.trace_path = dir + "anadex_trace_det_" + tag + ".jsonl";
      s.trace_level = obs::TraceLevel::Eval;  // maximum instrumentation
    }
    outcomes.push_back(run(s));
    checkpoints.push_back(read_bytes(s.checkpoint_path));
  }

  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_TRUE(same_front(outcomes[i].front, outcomes[0].front)) << "variant " << i;
    EXPECT_EQ(outcomes[i].evaluations, outcomes[0].evaluations) << "variant " << i;
    EXPECT_EQ(outcomes[i].generations, outcomes[0].generations) << "variant " << i;
    ASSERT_FALSE(checkpoints[i].empty());
    EXPECT_EQ(checkpoints[i], checkpoints[0]) << "checkpoint of variant " << i;
  }
}

TEST(TraceDeterminism, GenTracesByteIdenticalAcrossThreadCounts) {
  const std::string dir = testing::TempDir();
  std::vector<std::string> traces;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    RunSettings s = small_mesacga();
    s.threads = threads;
    s.trace_path = dir + "anadex_trace_gen_" + std::to_string(threads) + ".jsonl";
    s.trace_level = obs::TraceLevel::Gen;
    (void)run(s);
    traces.push_back(read_bytes(s.trace_path));
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(TraceContent, MesacgaGenTraceCarriesPaperTelemetry) {
  const std::string dir = testing::TempDir();
  RunSettings s = small_mesacga();
  s.trace_path = dir + "anadex_trace_content.jsonl";
  s.trace_level = obs::TraceLevel::Gen;
  (void)run(s);

  std::ifstream in(s.trace_path);
  std::string line;
  bool saw_run_start = false, saw_run_end = false, saw_trailer = false;
  bool saw_occupancy = false, saw_t_a = false, saw_hv = false, saw_phase = false;
  bool saw_wall_clock = false;
  while (std::getline(in, line)) {
    saw_run_start = saw_run_start || line.find("\"ev\":\"run_start\"") != std::string::npos;
    saw_run_end = saw_run_end || line.find("\"ev\":\"run_end\"") != std::string::npos;
    saw_trailer = saw_trailer || line.find("\"ev\":\"trace_end\"") != std::string::npos;
    saw_phase = saw_phase || line.find("\"ev\":\"phase_end\"") != std::string::npos;
    if (line.find("\"ev\":\"sacga\"") != std::string::npos) {
      saw_occupancy = saw_occupancy || line.find("\"occupancy\":[") != std::string::npos;
      saw_t_a = saw_t_a || line.find("\"t_a\":") != std::string::npos;
    }
    if (line.find("\"ev\":\"gen\"") != std::string::npos) {
      saw_hv = saw_hv || line.find("\"hv\":") != std::string::npos;
    }
    // Gen traces must stay free of wall-clock data (determinism contract).
    saw_wall_clock = saw_wall_clock || line.find("\"t\":") != std::string::npos;
  }
  EXPECT_TRUE(saw_run_start);
  EXPECT_TRUE(saw_run_end);
  EXPECT_TRUE(saw_trailer);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_occupancy);
  EXPECT_TRUE(saw_t_a);
  EXPECT_TRUE(saw_hv);
  EXPECT_FALSE(saw_wall_clock);
}

TEST(RunSettingsValidation, RejectsTracePathWithMissingParentDirectory) {
  RunSettings s = small_mesacga();
  s.trace_path = testing::TempDir() + "no_such_subdir/run.jsonl";
  EXPECT_THROW(validate_run_settings(s), PreconditionError);

  s.trace_path = "run.jsonl";  // no parent: resolves to cwd, always valid
  validate_run_settings(s);

  s.trace_path = testing::TempDir() + "run.jsonl";
  validate_run_settings(s);
}

}  // namespace
}  // namespace anadex::expt
