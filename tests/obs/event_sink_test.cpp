// Unit tests of the telemetry event model: trace levels, the NullSink
// short-circuit, the counter/gauge conveniences, MinMeanMax and ScopedTimer.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "obs/event_sink.hpp"

namespace anadex::obs {
namespace {

/// Sink that deep-copies every recorded event (fields are borrowed, so a
/// test must snapshot them before the record() call returns).
class VectorSink final : public EventSink {
 public:
  struct Recorded {
    std::string name;
    TraceLevel level = TraceLevel::Gen;
    bool timed = false;
    std::vector<std::string> keys;
    std::vector<Field> fields;
  };

  explicit VectorSink(TraceLevel level = TraceLevel::Eval) : level_(level) {}

  bool enabled(TraceLevel level) const override {
    return level != TraceLevel::Off &&
           static_cast<int>(level) <= static_cast<int>(level_);
  }

  void record(const Event& event) override {
    Recorded r;
    r.name = std::string(event.name);
    r.level = event.level;
    r.timed = event.timed;
    for (const Field& f : event.fields) {
      r.keys.emplace_back(f.key);
      r.fields.push_back(f);
    }
    events.push_back(std::move(r));
  }

  std::vector<Recorded> events;

 private:
  TraceLevel level_;
};

TEST(TraceLevel, ParsesAndPrintsAllLevels) {
  EXPECT_EQ(trace_level_from_string("off"), TraceLevel::Off);
  EXPECT_EQ(trace_level_from_string("gen"), TraceLevel::Gen);
  EXPECT_EQ(trace_level_from_string("eval"), TraceLevel::Eval);
  EXPECT_EQ(to_string(TraceLevel::Off), "off");
  EXPECT_EQ(to_string(TraceLevel::Gen), "gen");
  EXPECT_EQ(to_string(TraceLevel::Eval), "eval");
  EXPECT_THROW((void)trace_level_from_string("verbose"), PreconditionError);
  EXPECT_THROW((void)trace_level_from_string("Gen"), PreconditionError);
  EXPECT_THROW((void)trace_level_from_string(""), PreconditionError);
}

TEST(NullSink, DisabledAtEveryLevel) {
  NullSink& sink = null_sink();
  EXPECT_FALSE(sink.enabled(TraceLevel::Off));
  EXPECT_FALSE(sink.enabled(TraceLevel::Gen));
  EXPECT_FALSE(sink.enabled(TraceLevel::Eval));
  // record() must be a harmless no-op even when called anyway.
  const Field fields[] = {u64("x", 1)};
  sink.record(Event{"gen", TraceLevel::Gen, false, fields});
  sink.flush();
}

TEST(EventSink, RecordsEventsInOrderWithFields) {
  VectorSink sink;
  const Field a[] = {u64("gen", 7), f64("hv", 0.5)};
  const Field b[] = {str("algo", "MESACGA")};
  sink.record(Event{"gen", TraceLevel::Gen, false, a});
  sink.record(Event{"run_start", TraceLevel::Gen, false, b});

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].name, "gen");
  EXPECT_EQ(sink.events[1].name, "run_start");
  ASSERT_EQ(sink.events[0].keys.size(), 2u);
  EXPECT_EQ(sink.events[0].keys[0], "gen");
  EXPECT_EQ(sink.events[0].fields[0].u64, 7u);
  EXPECT_EQ(sink.events[0].fields[1].f64, 0.5);
  EXPECT_EQ(sink.events[1].fields[0].str, "MESACGA");
}

TEST(EventSink, CounterAndGaugeConveniences) {
  VectorSink sink;
  sink.counter("evals", 128);
  sink.gauge("t_a", 42.5, TraceLevel::Eval);

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].name, "counter");
  EXPECT_EQ(sink.events[0].level, TraceLevel::Gen);
  EXPECT_EQ(sink.events[0].fields[1].u64, 128u);
  EXPECT_EQ(sink.events[1].name, "gauge");
  EXPECT_EQ(sink.events[1].level, TraceLevel::Eval);
  EXPECT_EQ(sink.events[1].fields[1].f64, 42.5);
}

TEST(EventSink, CounterRespectsDisabledLevel) {
  VectorSink sink(TraceLevel::Gen);
  sink.counter("evals", 1, TraceLevel::Eval);  // above the sink's level
  EXPECT_TRUE(sink.events.empty());
}

TEST(MinMeanMax, TracksStatistics) {
  MinMeanMax acc;
  EXPECT_EQ(acc.count, 0u);
  EXPECT_EQ(acc.mean(), 0.0);

  acc.add(3.0);
  acc.add(1.0);
  acc.add(5.0);
  EXPECT_EQ(acc.min, 1.0);
  EXPECT_EQ(acc.max, 5.0);
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
}

TEST(ScopedTimer, EmitsTimedEventOnStop) {
  VectorSink sink;
  ScopedTimer timer(&sink, "run");
  EXPECT_GE(timer.seconds(), 0.0);
  timer.stop();
  timer.stop();  // idempotent

  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].name, "timer");
  EXPECT_TRUE(sink.events[0].timed);
  EXPECT_EQ(sink.events[0].fields[0].str, "run");
  EXPECT_GE(sink.events[0].fields[1].f64, 0.0);
}

TEST(ScopedTimer, EmitsOnDestruction) {
  VectorSink sink;
  { ScopedTimer timer(&sink, "scope"); }
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].name, "timer");
}

TEST(ScopedTimer, NoOpWithNullSinkOrDisabledLevel) {
  { ScopedTimer timer(nullptr, "x"); }  // must not crash
  VectorSink gen_only(TraceLevel::Gen);
  { ScopedTimer timer(&gen_only, "x", TraceLevel::Eval); }
  EXPECT_TRUE(gen_only.events.empty());
}

}  // namespace
}  // namespace anadex::obs
