// JsonlTraceWriter: framing (trace_start header / trace_end trailer), event
// ordering, JSON escaping, double formatting, flush-on-destruction and the
// level gate. Files go to gtest's TempDir.
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "obs/jsonl_writer.hpp"

namespace anadex::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

TEST(JsonlWriter, WritesHeaderEventsAndTrailerInOrder) {
  const std::string path = temp_path("anadex_jsonl_order.jsonl");
  {
    JsonlTraceWriter writer(path, TraceLevel::Gen);
    const Field a[] = {u64("gen", 0)};
    const Field b[] = {u64("gen", 1)};
    writer.record(Event{"gen", TraceLevel::Gen, false, a});
    writer.record(Event{"gen", TraceLevel::Gen, false, b});
    EXPECT_EQ(writer.events_written(), 3u);  // header + 2 events
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            R"({"ev":"trace_start","schema":"anadex-trace/v1","level":"gen"})");
  EXPECT_EQ(lines[1], R"({"ev":"gen","gen":0})");
  EXPECT_EQ(lines[2], R"({"ev":"gen","gen":1})");
  EXPECT_EQ(lines[3], R"({"ev":"trace_end","events":4})");
}

TEST(JsonlWriter, FlushesCompletedTraceOnDestruction) {
  const std::string path = temp_path("anadex_jsonl_flush.jsonl");
  {
    JsonlTraceWriter writer(path, TraceLevel::Gen);
    const Field f[] = {u64("gen", 0)};
    writer.record(Event{"gen", TraceLevel::Gen, false, f});
    // No explicit flush: destruction must still produce a complete file.
  }
  const auto lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("trace_end"), std::string::npos);
}

TEST(JsonlWriter, ExplicitFlushMakesEventsVisible) {
  const std::string path = temp_path("anadex_jsonl_explicit_flush.jsonl");
  JsonlTraceWriter writer(path, TraceLevel::Gen);
  const Field f[] = {u64("gen", 3)};
  writer.record(Event{"gen", TraceLevel::Gen, false, f});
  writer.flush();
  const auto lines = read_lines(path);  // writer still open
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], R"({"ev":"gen","gen":3})");
}

TEST(JsonlWriter, DropsEventsAboveConfiguredLevel) {
  const std::string path = temp_path("anadex_jsonl_level.jsonl");
  {
    JsonlTraceWriter writer(path, TraceLevel::Gen);
    EXPECT_TRUE(writer.enabled(TraceLevel::Gen));
    EXPECT_FALSE(writer.enabled(TraceLevel::Eval));
    EXPECT_FALSE(writer.enabled(TraceLevel::Off));
    const Field f[] = {u64("x", 1)};
    writer.record(Event{"batch", TraceLevel::Eval, true, f});  // above level
    writer.record(Event{"gen", TraceLevel::Gen, false, f});
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // header, the gen event, trailer
  EXPECT_NE(lines[1].find("\"ev\":\"gen\""), std::string::npos);
}

TEST(JsonlWriter, StampsMonotonicTimeOnTimedEvents) {
  const std::string path = temp_path("anadex_jsonl_timed.jsonl");
  {
    JsonlTraceWriter writer(path, TraceLevel::Eval);
    const Field f[] = {u64("size", 8)};
    writer.record(Event{"batch", TraceLevel::Eval, true, f});
    writer.record(Event{"gen", TraceLevel::Gen, false, f});
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"t\":"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2].find("\"t\":"), std::string::npos) << lines[2];
}

TEST(JsonlWriter, SerializesEveryFieldKind) {
  const std::string path = temp_path("anadex_jsonl_kinds.jsonl");
  const std::uint64_t counts[] = {1, 2, 3};
  const double probs[] = {0.5, 0.25};
  {
    JsonlTraceWriter writer(path, TraceLevel::Gen);
    const Field f[] = {u64("u", 42),        i64("i", -7),
                       f64("d", 1.5),       boolean("b", true),
                       str("s", "MESACGA"), u64_array("us", counts),
                       f64_array("ds", probs)};
    writer.record(Event{"kinds", TraceLevel::Gen, false, f});
  }
  const auto lines = read_lines(path);
  EXPECT_EQ(lines[1],
            R"({"ev":"kinds","u":42,"i":-7,"d":1.5,"b":true,"s":"MESACGA",)"
            R"("us":[1,2,3],"ds":[0.5,0.25]})");
}

TEST(JsonlWriter, EscapesStrings) {
  std::string out;
  append_json_string(out, "plain");
  EXPECT_EQ(out, R"("plain")");

  out.clear();
  append_json_string(out, "a\"b\\c");
  EXPECT_EQ(out, R"("a\"b\\c")");

  out.clear();
  append_json_string(out, "tab\there\nline\rret");
  EXPECT_EQ(out, R"("tab\there\nline\rret")");

  out.clear();
  append_json_string(out, std::string_view("nul\0byte", 8));
  EXPECT_EQ(out, R"("nul\u0000byte")");
}

TEST(JsonlWriter, FormatsDoublesShortestRoundTrip) {
  std::string out;
  append_json_double(out, 0.1);
  EXPECT_EQ(out, "0.1");

  out.clear();
  append_json_double(out, -2.5e-12);
  EXPECT_EQ(out, "-2.5e-12");

  out.clear();
  append_json_double(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, R"("inf")");

  out.clear();
  append_json_double(out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, R"("-inf")");

  out.clear();
  append_json_double(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, R"("nan")");
}

TEST(JsonlWriter, RejectsOffLevelAndMissingParentDirectory) {
  EXPECT_THROW(JsonlTraceWriter(temp_path("anadex_off.jsonl"), TraceLevel::Off),
               PreconditionError);
  EXPECT_THROW(JsonlTraceWriter(testing::TempDir() + "no_such_dir/x.jsonl",
                                TraceLevel::Gen),
               PreconditionError);
}

}  // namespace
}  // namespace anadex::obs
