// Integration tests: the full stack from GA through circuit evaluation to
// system-level budgeting, at reduced budgets so the suite stays fast.
#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/rng.hpp"
#include "moga/nsga2.hpp"
#include "moga/operators.hpp"
#include "expt/runner.hpp"
#include "moga/dominance.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "sysdes/sigma_delta.hpp"

namespace anadex {
namespace {

expt::RunSettings medium_settings(expt::Algo algo, std::uint64_t seed = 21) {
  expt::RunSettings s;
  s.algo = algo;
  s.spec = problems::spec_suite()[4];  // moderately easy
  s.population = 48;
  s.generations = 120;
  s.partitions = 6;
  s.mesacga_schedule = {8, 4, 2, 1};
  s.phase1_cap = 40;
  s.seed = seed;
  return s;
}

TEST(EndToEnd, AllAlgorithmsProduceFeasibleFronts) {
  const problems::IntegratorProblem problem(problems::spec_suite()[4]);
  for (auto algo : {expt::Algo::TPG, expt::Algo::SACGA, expt::Algo::MESACGA}) {
    const auto outcome = expt::run(problem, medium_settings(algo));
    ASSERT_FALSE(outcome.front.empty()) << expt::algo_name(algo);
    for (const auto& s : outcome.front) {
      EXPECT_GT(s.power_w, 0.0);
      EXPECT_LE(s.power_w, 2e-3);
      EXPECT_GE(s.cload_f, 0.0);
      EXPECT_LE(s.cload_f, problems::kLoadMax + 1e-18);
    }
  }
}

TEST(EndToEnd, FrontDesignsReproduceTheirReportedObjectives) {
  // Every front sample must decode into a design whose re-evaluated typical
  // performance matches the reported power (the whole chain is consistent).
  const problems::IntegratorProblem problem(problems::spec_suite()[4]);
  moga::Nsga2Params params;
  params.population_size = 48;
  params.generations = 80;
  params.seed = 31;
  const auto result = moga::run_nsga2(problem, params);
  ASSERT_FALSE(result.front.empty());
  for (const auto& ind : result.front) {
    const auto design = problems::IntegratorProblem::decode(ind.genes);
    const auto perf = problem.typical_performance(design);
    EXPECT_NEAR(perf.power, ind.eval.objectives[0], 1e-9);
  }
}

TEST(EndToEnd, PartitionProtectionYieldsWiderCoverageThanPureGlobal) {
  // The paper's central qualitative claim at the mechanism level: at equal
  // budget, the annealed local/global mix covers a wider load range than
  // pure global competition (which clusters).
  const problems::IntegratorProblem problem(problems::chosen_spec());
  expt::RunSettings tpg = medium_settings(expt::Algo::TPG);
  tpg.spec = problems::chosen_spec();
  tpg.generations = 250;
  expt::RunSettings sacga = medium_settings(expt::Algo::SACGA);
  sacga.spec = problems::chosen_spec();
  sacga.generations = 250;

  double tpg_span = 0.0;
  double sacga_span = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    tpg.seed = seed;
    sacga.seed = seed;
    tpg_span += expt::run(problem, tpg).load_span_pf;
    sacga_span += expt::run(problem, sacga).load_span_pf;
  }
  EXPECT_GT(sacga_span, tpg_span);
}

TEST(EndToEnd, SigmaDeltaBudgetingFromOptimizedFront) {
  const problems::IntegratorProblem problem(problems::spec_suite()[4]);
  const auto outcome = expt::run(problem, medium_settings(expt::Algo::SACGA));
  ASSERT_FALSE(outcome.front.empty());

  std::vector<sysdes::FrontPoint> points;
  for (const auto& s : outcome.front) points.push_back({s.power_w, s.cload_f});

  sysdes::ModulatorSpec mod;
  const auto budget = sysdes::budget_from_front(points, sysdes::default_stage_loads(mod));
  ASSERT_EQ(budget.stages.size(), 4u);
  if (budget.feasible) {
    EXPECT_GT(budget.total_power, 0.0);
    EXPECT_LT(budget.total_power, 8e-3);
  }
}

TEST(EndToEnd, ReferenceDesignSurvivesTheWholePipeline) {
  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto design = testing_support::reference_design();
  const auto eval = problem.evaluated(problems::IntegratorProblem::encode(design));
  ASSERT_TRUE(eval.feasible());

  // It must also be a valid budget candidate for a modulator stage.
  const sysdes::FrontPoint point{eval.objectives[0],
                                 problems::kLoadMax - eval.objectives[1]};
  const auto budget = sysdes::budget_from_front({point}, {2e-12});
  EXPECT_TRUE(budget.feasible);
}

TEST(EndToEnd, HarderSpecsAreHarderToSolve) {
  // The graded suite: the hardest spec must not admit more feasible random
  // samples than the easiest one.
  const problems::IntegratorProblem easy(problems::spec_suite().front());
  const problems::IntegratorProblem hard(problems::spec_suite().back());
  Rng rng(55);
  const auto bounds = easy.bounds();
  int easy_feasible = 0;
  int hard_feasible = 0;
  for (int i = 0; i < 400; ++i) {
    const auto genes = moga::random_genome(bounds, rng);
    if (easy.evaluated(genes).feasible()) ++easy_feasible;
    if (hard.evaluated(genes).feasible()) ++hard_feasible;
  }
  EXPECT_GE(easy_feasible, hard_feasible);
}

}  // namespace
}  // namespace anadex
