// End-to-end chaos matrix (docs/robustness.md): a run under deterministic
// evaluator faults is crashed mid-checkpoint-write, auto-recovered, killed
// again at a seeded generation via the graceful-stop token, auto-resumed,
// and must finish with a final front AND final checkpoint file that are
// byte-identical to an uninterrupted run — for worker thread counts 1 and 8.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hpp"
#include "expt/runner.hpp"
#include "problems/spec_suite.hpp"
#include "robust/chaos.hpp"

namespace anadex::expt {
namespace {

constexpr std::uint64_t kChaosSeed = 2026;
constexpr std::size_t kGenerations = 24;  // multiple of the snapshot cadence
constexpr std::size_t kCheckpointEvery = 8;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void remove_chain(const std::string& base) {
  for (const char* suffix : {"", ".1", ".2", ".tmp"}) {
    std::remove((base + suffix).c_str());
  }
}

RunSettings chaos_settings(Algo algo, std::size_t threads,
                           const robust::ChaosPlan& plan) {
  RunSettings s;
  s.algo = algo;
  s.spec = problems::spec_suite().front();
  s.population = 32;
  s.generations = kGenerations;
  s.partitions = 4;
  s.mesacga_schedule = {4, 2, 1};
  s.phase1_cap = 10;
  s.seed = 9;
  s.threads = threads;
  s.checkpoint_every = kCheckpointEvery;
  s.checkpoint_keep = 3;
  s.fault_injection = plan.faults;
  // Deliberately NO eval deadline here: a fired watchdog trades determinism
  // for liveness, and this matrix asserts byte-identity.
  return s;
}

struct PipelineResult {
  std::vector<FrontSample> front;
  std::string checkpoint_bytes;  ///< final slot-0 checkpoint file
  std::size_t evaluations = 0;
  std::size_t total_faults = 0;
};

/// The uninterrupted reference: one clean run under the plan's faults.
PipelineResult run_baseline(const problems::IntegratorProblem& problem, Algo algo,
                            std::size_t threads, const robust::ChaosPlan& plan,
                            const std::string& path) {
  remove_chain(path);
  RunSettings s = chaos_settings(algo, threads, plan);
  s.checkpoint_path = path;
  const auto outcome = run(problem, s);
  PipelineResult result;
  result.front = outcome.front;
  result.checkpoint_bytes = slurp(path);
  result.evaluations = outcome.evaluations;
  result.total_faults = outcome.faults.total_faults();
  remove_chain(path);
  return result;
}

/// The chaotic pipeline: crash during a checkpoint write, recover with
/// `--resume auto`, get killed at the plan's generation, resume again.
PipelineResult run_chaotic(const problems::IntegratorProblem& problem, Algo algo,
                           std::size_t threads, const robust::ChaosPlan& plan,
                           const std::string& path, bool* crashed, bool* killed) {
  remove_chain(path);

  // Leg 1: die between a checkpoint's temp write and its rename.
  auto completed = std::make_shared<std::size_t>(0);
  RunSettings s = chaos_settings(algo, threads, plan);
  s.checkpoint_path = path;
  s.checkpoint_write_hook =
      robust::make_crashing_write_hook(plan.crash_at_write, completed);
  *crashed = false;
  try {
    (void)run(problem, s);
  } catch (const robust::InjectedCrash&) {
    *crashed = true;
  }

  // Leg 2: recover past whatever the crash left behind, then take a SIGINT
  // stand-in at the plan's kill generation.
  CancelToken stop;
  RunSettings resume = chaos_settings(algo, threads, plan);
  resume.checkpoint_path = path;
  resume.resume = ResumeMode::Auto;
  resume.stop = &stop;
  resume.on_generation = [&stop, &plan](std::size_t gen, const moga::Population&) {
    if (gen + 1 >= plan.kill_generation) stop.request();
  };
  const auto interrupted = run(problem, resume);
  *killed = interrupted.interrupted;

  // Leg 3: finish the job.
  RunSettings finish = chaos_settings(algo, threads, plan);
  finish.checkpoint_path = path;
  finish.resume = ResumeMode::Auto;
  const auto outcome = run(problem, finish);
  EXPECT_FALSE(outcome.interrupted);

  PipelineResult result;
  result.front = outcome.front;
  result.checkpoint_bytes = slurp(path);
  result.evaluations = outcome.evaluations;
  result.total_faults = outcome.faults.total_faults();
  remove_chain(path);
  return result;
}

void expect_identical(const PipelineResult& a, const PipelineResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  ASSERT_EQ(a.front.size(), b.front.size()) << label;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].power_w, b.front[i].power_w) << label << " #" << i;
    EXPECT_EQ(a.front[i].cload_f, b.front[i].cload_f) << label << " #" << i;
  }
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes) << label;
}

void run_matrix(Algo algo, const char* tag) {
  const auto plan = robust::ChaosPlan::from_seed(kChaosSeed, kGenerations);
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const std::string base = testing::TempDir() + "anadex_chaos_" + tag;

  const PipelineResult reference =
      run_baseline(problem, algo, 1, plan, base + "_ref.cp");
  // The plan's fault rates must actually have bitten, or this test proves
  // nothing about recovery under faults.
  EXPECT_GT(reference.total_faults, 0u) << tag;

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    bool crashed = false;
    bool killed = false;
    const PipelineResult chaotic = run_chaotic(
        problem, algo, threads, plan, base + "_t" + std::to_string(threads) + ".cp",
        &crashed, &killed);
    const std::string label =
        std::string(tag) + " threads=" + std::to_string(threads);
    EXPECT_TRUE(killed) << label << ": stop token never interrupted the run";
    expect_identical(reference, chaotic, label);

    // Thread count is a pure execution knob: the uninterrupted runs must
    // also agree byte-for-byte across the matrix.
    if (threads != 1) {
      const PipelineResult wide =
          run_baseline(problem, algo, threads, plan, base + "_wide.cp");
      expect_identical(reference, wide, label + " baseline");
    }
  }
}

TEST(ChaosRecovery, Nsga2SurvivesCrashKillAndResumeBitIdentically) {
  run_matrix(Algo::TPG, "tpg");
}

TEST(ChaosRecovery, MesacgaSurvivesCrashKillAndResumeBitIdentically) {
  run_matrix(Algo::MESACGA, "mesacga");
}

TEST(ChaosRecovery, InjectedWriteCrashIsActuallyExercised) {
  // The NSGA-II leg writes exactly generations/checkpoint_every snapshots,
  // so the plan's 1-based crash ordinal (<= 3) must always hit.
  const auto plan = robust::ChaosPlan::from_seed(kChaosSeed, kGenerations);
  ASSERT_GE(plan.crash_at_write, 1u);
  ASSERT_LE(plan.crash_at_write, kGenerations / kCheckpointEvery);

  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const std::string path = testing::TempDir() + "anadex_chaos_crashcheck.cp";
  remove_chain(path);
  auto completed = std::make_shared<std::size_t>(0);
  RunSettings s = chaos_settings(Algo::TPG, 1, plan);
  s.checkpoint_path = path;
  s.checkpoint_write_hook =
      robust::make_crashing_write_hook(plan.crash_at_write, completed);
  EXPECT_THROW((void)run(problem, s), robust::InjectedCrash);
  EXPECT_EQ(*completed, plan.crash_at_write - 1);
  remove_chain(path);
}

}  // namespace
}  // namespace anadex::expt
