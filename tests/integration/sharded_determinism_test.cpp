// Sharded-vs-solo byte-identity matrix (docs/sharding.md): the same island
// run executed across 1, 2 and 4 shards — at 1 and 8 evaluation threads —
// must reproduce the solo run's final front, evaluation totals and final
// checkpoint file bit for bit. The matrix repeats under injected evaluator
// faults with one shard crash-killed mid-epoch (the supervisor relaunches
// it), and a checkpoint written by a 2-shard run must resume at 4 shards
// and still land on the solo bytes.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "robust/chaos.hpp"
#include "shard/coordinator.hpp"

namespace anadex::shard {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kGenerations = 24;
constexpr std::size_t kMigrationInterval = 6;
constexpr std::size_t kCheckpointEvery = 8;  // divides kGenerations: the solo
                                             // final slot is the gen-24 state

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

expt::RunSettings island_settings(std::size_t threads) {
  expt::RunSettings s;
  s.algo = expt::Algo::Island;
  s.spec = problems::spec_suite().front();
  s.population = 32;
  s.generations = kGenerations;
  s.islands = 4;
  s.migration_interval = kMigrationInterval;
  s.seed = 9;
  s.threads = threads;
  s.checkpoint_every = kCheckpointEvery;
  s.checkpoint_keep = 2;
  return s;
}

struct Reference {
  std::vector<expt::FrontSample> front;
  std::size_t evaluations = 0;
  std::size_t total_faults = 0;
  std::string checkpoint_bytes;
};

Reference solo_reference(const problems::IntegratorProblem& problem,
                         const expt::RunSettings& base, const fs::path& dir) {
  expt::RunSettings s = base;
  s.checkpoint_path = (dir / "solo.cp").string();
  const expt::RunOutcome outcome = expt::run(problem, s);
  Reference ref;
  ref.front = outcome.front;
  ref.evaluations = outcome.evaluations;
  ref.total_faults = outcome.faults.total_faults();
  ref.checkpoint_bytes = slurp(s.checkpoint_path);
  return ref;
}

void expect_matches(const Reference& ref, const expt::RunOutcome& outcome,
                    const std::string& checkpoint_path, const std::string& label) {
  EXPECT_EQ(outcome.evaluations, ref.evaluations) << label;
  EXPECT_EQ(outcome.faults.total_faults(), ref.total_faults) << label;
  ASSERT_EQ(outcome.front.size(), ref.front.size()) << label;
  for (std::size_t i = 0; i < ref.front.size(); ++i) {
    EXPECT_EQ(outcome.front[i].power_w, ref.front[i].power_w) << label << " #" << i;
    EXPECT_EQ(outcome.front[i].cload_f, ref.front[i].cload_f) << label << " #" << i;
  }
  EXPECT_EQ(slurp(checkpoint_path), ref.checkpoint_bytes) << label;
}

struct TestDir {
  fs::path dir;
  explicit TestDir(const char* name) : dir(name) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TestDir() { fs::remove_all(dir); }
};

TEST(ShardedDeterminism, MatrixMatchesSoloBytes) {
  const TestDir scope("sharded_matrix_test.dir");
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const Reference ref = solo_reference(problem, island_settings(threads), scope.dir);
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const std::string label =
          "shards=" + std::to_string(shards) + " threads=" + std::to_string(threads);
      expt::RunSettings s = island_settings(threads);
      s.shards = shards;
      const std::string tag = "s" + std::to_string(shards) + "t" + std::to_string(threads);
      s.shard_dir = (scope.dir / ("spool_" + tag)).string();
      s.checkpoint_path = (scope.dir / (tag + ".cp")).string();
      ShardOptions options;  // thread mode: in-process, full settings allowed
      const expt::RunOutcome outcome = run_sharded(problem, s, options);
      EXPECT_FALSE(outcome.interrupted) << label;
      EXPECT_EQ(outcome.generations, kGenerations) << label;
      expect_matches(ref, outcome, s.checkpoint_path, label);
    }
  }
}

TEST(ShardedDeterminism, KilledShardRecoversToSoloBytes) {
  // Chaos drill: evaluator faults active AND shard 1 crash-killed right
  // after publishing its epoch-2 migrants (mid-exchange, before it
  // integrates). The supervisor relaunches it; the replay republishes
  // byte-identical migrant files and the merged result must still equal the
  // solo run under the same faults.
  const TestDir scope("sharded_chaos_test.dir");
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const robust::ChaosPlan plan =
      robust::ChaosPlan::from_seed(2027, kGenerations, /*with_write_crash=*/false);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    expt::RunSettings base = island_settings(threads);
    base.fault_injection = plan.faults;
    const Reference ref = solo_reference(problem, base, scope.dir);
    EXPECT_GT(ref.total_faults, 0u) << "chaos plan injected nothing";
    for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      const std::string label = "chaos shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
      expt::RunSettings s = base;
      s.shards = shards;
      const std::string tag = "s" + std::to_string(shards) + "t" + std::to_string(threads);
      s.shard_dir = (scope.dir / ("chaos_spool_" + tag)).string();
      s.checkpoint_path = (scope.dir / ("chaos_" + tag + ".cp")).string();
      ShardOptions options;
      options.chaos = WorkerChaos{/*shard=*/1, /*epoch=*/2};
      const expt::RunOutcome outcome = run_sharded(problem, s, options);
      expect_matches(ref, outcome, s.checkpoint_path, label);
    }
  }
}

TEST(ShardedDeterminism, CheckpointWrittenAtTwoShardsResumesAtFour) {
  // Leg 1 runs 2 shards and stops at epoch 2 (generation 12) with a
  // canonical checkpoint. Leg 2 resumes THAT checkpoint at 4 shards — the
  // coordinator re-slices it for the new topology — and must finish on the
  // solo run's exact bytes.
  const TestDir scope("sharded_resume_test.dir");
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const Reference ref = solo_reference(problem, island_settings(1), scope.dir);

  expt::RunSettings first = island_settings(1);
  first.shards = 2;
  first.shard_dir = (scope.dir / "spool").string();
  first.checkpoint_path = (scope.dir / "handoff.cp").string();
  ShardOptions stop_options;
  stop_options.stop_after_epoch = 2;
  const expt::RunOutcome paused = run_sharded(problem, first, stop_options);
  EXPECT_TRUE(paused.interrupted);
  EXPECT_EQ(paused.generations, 2 * kMigrationInterval);

  expt::RunSettings second = island_settings(1);
  second.shards = 4;
  second.shard_dir = first.shard_dir;  // same spool, stale 2-shard partials
  second.checkpoint_path = first.checkpoint_path;
  second.resume = expt::ResumeMode::Auto;
  ShardOptions finish_options;
  const expt::RunOutcome outcome = run_sharded(problem, second, finish_options);
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.resumed_from_generation, 2 * kMigrationInterval);
  expect_matches(ref, outcome, second.checkpoint_path, "cross-shard-count resume");
}

}  // namespace
}  // namespace anadex::shard
