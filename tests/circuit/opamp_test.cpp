#include "circuit/opamp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/rng.hpp"

namespace anadex::circuit {
namespace {

const device::Process kProc = device::Process::typical();

OpAmpDesign reference_opamp() { return testing_support::reference_design().opamp; }

TEST(OpAmp, ReferenceDesignBiasesCorrectly) {
  const auto a = analyze(kProc, reference_opamp(), OpAmpContext{});
  EXPECT_GT(a.i5, 1e-6);
  EXPECT_GT(a.i7, 1e-6);
  EXPECT_GT(a.vgs_ref, kProc.nmos.vt0);
  EXPECT_LT(a.vgs_ref, kProc.vdd);
  EXPECT_GE(a.margins.worst(), 0.0);
}

TEST(OpAmp, GainIsLargeAndPositive) {
  const auto a = analyze(kProc, reference_opamp(), OpAmpContext{});
  EXPECT_GT(a.a1, 5.0);
  EXPECT_GT(a.a2, 5.0);
  EXPECT_NEAR(a.a0, a.a1 * a.a2, 1e-6 * a.a0);
  EXPECT_GT(a.a0, 500.0);
}

TEST(OpAmp, PowerAccountsForAllBranches) {
  const OpAmpDesign d = reference_opamp();
  const auto a = analyze(kProc, d, OpAmpContext{});
  EXPECT_NEAR(a.power, kProc.vdd * (d.ibias + a.i5 + 2.0 * a.i7), 1e-12);
}

TEST(OpAmp, TailCurrentMirrorsScaleWithW5) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.m5.w *= 2.0;
  const auto doubled = analyze(kProc, d, OpAmpContext{});
  EXPECT_NEAR(doubled.i5 / base.i5, 2.0, 0.15);  // lambda keeps it from exact 2x
}

TEST(OpAmp, SecondStageCurrentMirrorsScaleWithW7) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.m7.w *= 1.5;
  const auto scaled = analyze(kProc, d, OpAmpContext{});
  EXPECT_NEAR(scaled.i7 / base.i7, 1.5, 0.1);
}

TEST(OpAmp, BiasCurrentRaisesAllCurrents) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.ibias *= 2.0;
  const auto doubled = analyze(kProc, d, OpAmpContext{});
  EXPECT_GT(doubled.i5, 1.5 * base.i5);
  EXPECT_GT(doubled.i7, 1.5 * base.i7);
  EXPECT_GT(doubled.power, base.power);
}

TEST(OpAmp, MirrorBalanceRespondsToDriverWidth) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.m6.w *= 3.0;  // triples ID6 while I7 is unchanged -> gross imbalance
  const auto unbalanced = analyze(kProc, d, OpAmpContext{});
  EXPECT_GT(unbalanced.mirror_balance_error, base.mirror_balance_error + 0.5);
}

TEST(OpAmp, SlewRateIsTailOverCc) {
  const auto a = analyze(kProc, reference_opamp(), OpAmpContext{});
  EXPECT_NEAR(a.slew_internal, a.i5 / a.cc_eff, 1e-3 * a.slew_internal);
}

TEST(OpAmp, LargerCcLowersUnityGainFrequency) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.cc *= 2.0;
  const auto big_cc = analyze(kProc, d, OpAmpContext{});
  EXPECT_LT(unity_gain_radians(big_cc), unity_gain_radians(base));
}

TEST(OpAmp, NoiseFallsWithInputTransconductance) {
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.ibias *= 2.0;  // more tail current -> more gm1
  const auto hot = analyze(kProc, d, OpAmpContext{});
  EXPECT_GT(hot.gm1, base.gm1);
  EXPECT_LT(hot.noise_psd, base.noise_psd);
}

TEST(OpAmp, SwingShrinksWithSecondStageOverdrive) {
  // M6's gate drive equals VSG3 (set by the mirror load), so its overdrive
  // — and with it vdsat6 and the output swing — responds to M3's sizing.
  OpAmpDesign d = reference_opamp();
  const auto base = analyze(kProc, d, OpAmpContext{});
  d.m3.w /= 8.0;  // narrower diode -> larger VSG3 -> larger vdsat6
  const auto squeezed = analyze(kProc, d, OpAmpContext{});
  EXPECT_LT(squeezed.swing, base.swing);
}

TEST(OpAmp, AreaSumsDeviceGateAreas) {
  const OpAmpDesign d = reference_opamp();
  const auto a = analyze(kProc, d, OpAmpContext{});
  const auto ref = bias_reference_geometry();
  const double expected = 2.0 * d.m1.w * d.m1.l + 2.0 * d.m3.w * d.m3.l +
                          d.m5.w * d.m5.l + 2.0 * d.m6.w * d.m6.l +
                          2.0 * d.m7.w * d.m7.l + ref.w * ref.l;
  EXPECT_NEAR(a.area, expected, 1e-18);
}

TEST(OpAmp, StarvedBiasReportsNegativeMargins) {
  OpAmpDesign d = reference_opamp();
  d.ibias = 50e-6;
  d.m5 = {1e-6, 2e-6};  // tiny tail device at big reference current
  const auto a = analyze(kProc, d, OpAmpContext{});
  // With a huge vgs_ref demand or a cutoff/starved stage somewhere, at least
  // one diagnostic must flag the design.
  EXPECT_TRUE(a.margins.worst() < 0.0 || a.mirror_balance_error > 0.3 ||
              a.vov_worst < 0.1);
}

TEST(OpAmp, CutoffDesignGetsPenaltyMarginNotNan) {
  OpAmpDesign d = reference_opamp();
  d.ibias = 1e-9;  // essentially off
  const auto a = analyze(kProc, d, OpAmpContext{});
  EXPECT_TRUE(std::isfinite(a.power));
  EXPECT_TRUE(std::isfinite(a.margins.worst()));
  EXPECT_TRUE(std::isfinite(a.a0));
}

TEST(OpAmp, FasterCornerRunsFaster) {
  // Mirrored currents are first-order process-insensitive (that is the
  // point of a current mirror), but the gate line and transconductances
  // shift with the corner: fast devices need less VGS and give more gm at
  // the same current.
  const OpAmpDesign d = reference_opamp();
  const auto tt = analyze(kProc, d, OpAmpContext{});
  const auto ff = analyze(kProc.at_corner(device::Corner::FF), d, OpAmpContext{});
  const auto ss = analyze(kProc.at_corner(device::Corner::SS), d, OpAmpContext{});
  EXPECT_LT(ff.vgs_ref, tt.vgs_ref);
  EXPECT_GT(ss.vgs_ref, tt.vgs_ref);
  EXPECT_GT(ff.gm1, ss.gm1);
  EXPECT_NEAR(ff.i5 / tt.i5, 1.0, 0.05);  // mirror rejects the corner shift
}

TEST(OpAmp, VovWorstIsTheMinimumDeviceOverdrive) {
  const auto a = analyze(kProc, reference_opamp(), OpAmpContext{});
  EXPECT_GT(a.vov_worst, 0.0);
  EXPECT_LT(a.vov_worst, 0.6);
}

/// Robustness of the analyzer itself: any design inside the search box must
/// produce finite diagnostics (never NaN/inf), since the GA will evaluate
/// arbitrary corners of the box.
class AnalyzerTotality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerTotality, RandomDesignsProduceFiniteAnalysis) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    OpAmpDesign d;
    d.m1 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.m3 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.m5 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.m6 = {rng.uniform(1e-6, 400e-6), rng.uniform(0.18e-6, 1e-6)};
    d.m7 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 1e-6)};
    d.ibias = rng.uniform(1e-6, 50e-6);
    d.cc = rng.uniform(0.1e-12, 5e-12);
    const auto a = analyze(kProc, d, OpAmpContext{});
    ASSERT_TRUE(std::isfinite(a.power));
    ASSERT_TRUE(std::isfinite(a.a0));
    ASSERT_TRUE(std::isfinite(a.noise_psd));
    ASSERT_TRUE(std::isfinite(a.mirror_balance_error));
    ASSERT_TRUE(std::isfinite(a.margins.worst()));
    ASSERT_TRUE(std::isfinite(a.c_first));
    ASSERT_TRUE(std::isfinite(a.mirror_pole));
    ASSERT_GE(a.power, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerTotality, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace anadex::circuit
