// analyze_lanes<W> vs scalar analyze(): the SoA opamp kernels must emit
// bit-identical analyses for every compiled lane width. Field-by-field
// bit comparison (not EXPECT_DOUBLE_EQ) because checkpoint byte-identity
// between --batch-eval modes rides on exact doubles.
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/batch_opamp.hpp"
#include "circuit/opamp.hpp"
#include "common/rng.hpp"
#include "device/process.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::circuit {
namespace {

const device::Process kProc = device::Process::typical();

/// Random designs drawn inside the optimization problem's own bounds, so
/// the suite stresses exactly the design space the engine explores.
std::vector<OpAmpDesign> random_designs(std::size_t count, std::uint64_t seed) {
  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto bounds = problem.bounds();
  Rng rng(seed);
  std::vector<OpAmpDesign> designs(count);
  std::vector<double> genes(bounds.size());
  for (auto& design : designs) {
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      genes[k] = rng.uniform(bounds[k].lower, bounds[k].upper);
    }
    design = problems::IntegratorProblem::decode(genes).opamp;
  }
  return designs;
}

void expect_bits(double lanes, double scalar, const char* field, std::size_t lane) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes), std::bit_cast<std::uint64_t>(scalar))
      << field << " lane " << lane << ": " << lanes << " vs " << scalar;
}

void expect_analysis_equal(const OpAmpAnalysis& lanes, const OpAmpAnalysis& scalar,
                           std::size_t lane) {
  expect_bits(lanes.i5, scalar.i5, "i5", lane);
  expect_bits(lanes.i7, scalar.i7, "i7", lane);
  expect_bits(lanes.vgs_ref, scalar.vgs_ref, "vgs_ref", lane);
  expect_bits(lanes.gm1, scalar.gm1, "gm1", lane);
  expect_bits(lanes.gm3, scalar.gm3, "gm3", lane);
  expect_bits(lanes.gm6, scalar.gm6, "gm6", lane);
  expect_bits(lanes.a1, scalar.a1, "a1", lane);
  expect_bits(lanes.a2, scalar.a2, "a2", lane);
  expect_bits(lanes.a0, scalar.a0, "a0", lane);
  expect_bits(lanes.cc_eff, scalar.cc_eff, "cc_eff", lane);
  expect_bits(lanes.c_first, scalar.c_first, "c_first", lane);
  expect_bits(lanes.c_out_self, scalar.c_out_self, "c_out_self", lane);
  expect_bits(lanes.c_mirror, scalar.c_mirror, "c_mirror", lane);
  expect_bits(lanes.c_in, scalar.c_in, "c_in", lane);
  expect_bits(lanes.mirror_pole, scalar.mirror_pole, "mirror_pole", lane);
  expect_bits(lanes.slew_internal, scalar.slew_internal, "slew_internal", lane);
  expect_bits(lanes.swing, scalar.swing, "swing", lane);
  expect_bits(lanes.noise_psd, scalar.noise_psd, "noise_psd", lane);
  expect_bits(lanes.power, scalar.power, "power", lane);
  expect_bits(lanes.area, scalar.area, "area", lane);
  expect_bits(lanes.mirror_balance_error, scalar.mirror_balance_error,
              "mirror_balance_error", lane);
  expect_bits(lanes.vov_worst, scalar.vov_worst, "vov_worst", lane);
  expect_bits(lanes.margins.m1, scalar.margins.m1, "margins.m1", lane);
  expect_bits(lanes.margins.m5, scalar.margins.m5, "margins.m5", lane);
  expect_bits(lanes.margins.m6, scalar.margins.m6, "margins.m6", lane);
  expect_bits(lanes.margins.m7, scalar.margins.m7, "margins.m7", lane);
  expect_bits(lanes.margins.mref, scalar.margins.mref, "margins.mref", lane);
}

template <std::size_t W>
void check_width(std::uint64_t seed) {
  const auto designs = random_designs(W, seed);
  const OpAmpContext context;

  std::array<OpAmpAnalysis, W> lanes;
  analyze_lanes<W>(kProc, std::span<const OpAmpDesign, W>(designs.data(), W), context,
                   std::span<OpAmpAnalysis, W>(lanes));

  for (std::size_t k = 0; k < W; ++k) {
    const OpAmpAnalysis scalar = analyze(kProc, designs[k], context);
    expect_analysis_equal(lanes[k], scalar, k);
  }
}

TEST(BatchOpAmp, WidthFourBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) check_width<4>(seed);
}

TEST(BatchOpAmp, WidthEightBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) check_width<8>(seed);
}

TEST(BatchOpAmp, WidthSixteenBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) check_width<16>(seed);
}

TEST(BatchOpAmp, EveryCornerBitIdentical) {
  // The engine evaluates each design on five process corners; the kernels
  // must agree on all of them, not just typical.
  const auto designs = random_designs(8, 99);
  const OpAmpContext context;
  for (const device::Corner corner : device::kAllCorners) {
    const device::Process process = kProc.at_corner(corner);
    std::array<OpAmpAnalysis, 8> lanes;
    analyze_lanes<8>(process, std::span<const OpAmpDesign, 8>(designs.data(), 8), context,
                     std::span<OpAmpAnalysis, 8>(lanes));
    for (std::size_t k = 0; k < 8; ++k) {
      expect_analysis_equal(lanes[k], analyze(process, designs[k], context), k);
    }
  }
}

}  // namespace
}  // namespace anadex::circuit
