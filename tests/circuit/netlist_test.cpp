#include "circuit/netlist.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/check.hpp"

namespace anadex::circuit {
namespace {

const device::Process kProc = device::Process::typical();

std::string reference_deck(NetlistOptions options = {}) {
  return netlist_string(kProc, testing_support::reference_design(), options);
}

TEST(Netlist, ContainsAllSevenDevicesAndReference) {
  const std::string deck = reference_deck();
  for (const char* card : {"M1 ", "M2 ", "M3 ", "M4 ", "M5 ", "M6 ", "M7 ", "MREF "}) {
    EXPECT_NE(deck.find(card), std::string::npos) << card;
  }
}

TEST(Netlist, ContainsModelCardsForBothPolarities) {
  const std::string deck = reference_deck();
  EXPECT_NE(deck.find(".model nch NMOS"), std::string::npos);
  EXPECT_NE(deck.find(".model pch PMOS"), std::string::npos);
  EXPECT_NE(deck.find("LEVEL=1"), std::string::npos);
}

TEST(Netlist, GeometryValuesMatchTheDesign) {
  const auto design = testing_support::reference_design();
  const std::string deck = reference_deck();
  std::ostringstream w1;
  w1 << "W=" << std::setprecision(8) << design.opamp.m1.w;
  EXPECT_NE(deck.find(w1.str()), std::string::npos);
}

TEST(Netlist, ScNetworkIncludedByDefault) {
  const std::string deck = reference_deck();
  EXPECT_NE(deck.find("CS "), std::string::npos);
  EXPECT_NE(deck.find("CF "), std::string::npos);
  EXPECT_NE(deck.find("COC "), std::string::npos);
  EXPECT_NE(deck.find("CLOAD "), std::string::npos);
}

TEST(Netlist, ScNetworkCanBeOmitted) {
  NetlistOptions options;
  options.include_sc_network = false;
  const std::string deck = reference_deck(options);
  EXPECT_EQ(deck.find("CLOAD "), std::string::npos);
  EXPECT_NE(deck.find("VINN "), std::string::npos);  // input still biased
}

TEST(Netlist, BiasSourceCarriesTheDesignCurrent) {
  const auto design = testing_support::reference_design();
  const std::string deck = reference_deck();
  std::ostringstream iref;
  iref << "IREF vdd nbias " << std::setprecision(8) << design.opamp.ibias;
  EXPECT_NE(deck.find(iref.str()), std::string::npos);
}

TEST(Netlist, DeckIsWellTerminated) {
  const std::string deck = reference_deck();
  EXPECT_NE(deck.find(".op"), std::string::npos);
  EXPECT_NE(deck.rfind(".end\n"), std::string::npos);
  EXPECT_EQ(deck.rfind(".end\n"), deck.size() - 5);
}

TEST(Netlist, TitleAppearsAsComment) {
  NetlistOptions options;
  options.title = "my custom title";
  const std::string deck = reference_deck(options);
  EXPECT_EQ(deck.rfind("* my custom title", 0), 0u);
}

TEST(Netlist, RejectsCommonModeOutsideRails) {
  NetlistOptions options;
  options.vicm = 2.5;
  std::ostringstream os;
  EXPECT_THROW(
      write_netlist(os, kProc, testing_support::reference_design(), options),
      PreconditionError);
}

TEST(Netlist, PmosThresholdIsNegatedInModelCard) {
  const std::string deck = reference_deck();
  EXPECT_NE(deck.find("VTO=-"), std::string::npos);
}

}  // namespace
}  // namespace anadex::circuit
