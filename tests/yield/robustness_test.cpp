#include "yield/robustness.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/check.hpp"

namespace anadex::yield {
namespace {

const device::Process kProc = device::Process::typical();

TEST(Perturbations, DrawIsDeterministicPerSeed) {
  MonteCarloParams params;
  const auto a = draw_perturbations(params);
  const auto b = draw_perturbations(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dvt_nmos, b[i].dvt_nmos);
    EXPECT_EQ(a[i].rel_cap, b[i].rel_cap);
  }
}

TEST(Perturbations, DifferentSeedsDiffer) {
  MonteCarloParams pa;
  MonteCarloParams pb;
  pb.seed = pa.seed + 1;
  const auto a = draw_perturbations(pa);
  const auto b = draw_perturbations(pb);
  EXPECT_NE(a[0].dvt_nmos, b[0].dvt_nmos);
}

TEST(Perturbations, CountMatchesRequest) {
  MonteCarloParams params;
  params.samples = 33;
  EXPECT_EQ(draw_perturbations(params).size(), 33u);
}

TEST(Perturbations, ZeroSamplesRejected) {
  MonteCarloParams params;
  params.samples = 0;
  EXPECT_THROW(draw_perturbations(params), PreconditionError);
}

TEST(Perturbations, MagnitudesTrackSigmas) {
  MonteCarloParams params;
  params.samples = 2000;
  params.sigma_vt = 0.01;
  const auto set = draw_perturbations(params);
  double var = 0.0;
  for (const auto& s : set) var += s.dvt_nmos * s.dvt_nmos;
  var /= static_cast<double>(set.size());
  EXPECT_NEAR(std::sqrt(var), 0.01, 0.001);
}

TEST(Perturbations, AppliedToShiftsProcess) {
  ProcessPerturbation s;
  s.dvt_nmos = 0.02;
  s.rel_mu_pmos = -0.1;
  s.rel_cap = 0.05;
  const auto shifted = s.applied_to(kProc);
  EXPECT_NEAR(shifted.nmos.vt0, kProc.nmos.vt0 + 0.02, 1e-12);
  EXPECT_NEAR(shifted.pmos.mu_cox, kProc.pmos.mu_cox * 0.9, 1e-12);
  EXPECT_NEAR(shifted.cap_density, kProc.cap_density * 1.05, 1e-15);
  // Untouched fields stay.
  EXPECT_EQ(shifted.pmos.vt0, kProc.pmos.vt0);
  EXPECT_EQ(shifted.nmos.mu_cox, kProc.nmos.mu_cox);
}

TEST(Robustness, EmptyPerturbationSetRejected) {
  const auto design = testing_support::reference_design();
  EXPECT_THROW(robustness(kProc, design, scint::IntegratorContext{}, scint::Spec{}, {}),
               PreconditionError);
}

TEST(Robustness, ReferenceDesignScoresHigh) {
  const auto design = testing_support::reference_design();
  const auto set = draw_perturbations(MonteCarloParams{});
  const double rob = robustness(kProc, design, scint::IntegratorContext{}, scint::Spec{}, set);
  EXPECT_GE(rob, 0.85);
  EXPECT_LE(rob, 1.0);
}

TEST(Robustness, TighterSpecScoresLower) {
  const auto design = testing_support::reference_design();
  const auto set = draw_perturbations(MonteCarloParams{});
  scint::Spec loose;
  loose.dr_min_db = 90.0;
  scint::Spec tight;
  tight.dr_min_db = 96.05;  // right at the reference design's margin
  const scint::IntegratorContext ctx;
  EXPECT_GE(robustness(kProc, design, ctx, loose, set),
            robustness(kProc, design, ctx, tight, set));
}

TEST(Robustness, ImpossibleSpecScoresZero) {
  const auto design = testing_support::reference_design();
  const auto set = draw_perturbations(MonteCarloParams{});
  scint::Spec impossible;
  impossible.dr_min_db = 200.0;
  EXPECT_EQ(robustness(kProc, design, scint::IntegratorContext{}, impossible, set), 0.0);
}

TEST(Robustness, DeterministicWithCommonRandomNumbers) {
  const auto design = testing_support::reference_design();
  const auto set = draw_perturbations(MonteCarloParams{});
  const scint::IntegratorContext ctx;
  const scint::Spec spec;
  EXPECT_EQ(robustness(kProc, design, ctx, spec, set),
            robustness(kProc, design, ctx, spec, set));
}

TEST(Robustness, QuantizedToSampleCount) {
  const auto design = testing_support::reference_design();
  MonteCarloParams params;
  params.samples = 4;
  const auto set = draw_perturbations(params);
  const double rob =
      robustness(kProc, design, scint::IntegratorContext{}, scint::Spec{}, set);
  const double scaled = rob * 4.0;
  EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

TEST(PairMismatch, DisabledByDefault) {
  const auto set = draw_perturbations(MonteCarloParams{});
  for (const auto& s : set) {
    EXPECT_EQ(s.z_pair_input, 0.0);
    EXPECT_EQ(s.z_pair_mirror, 0.0);
    EXPECT_EQ(s.z_pair_stage2, 0.0);
  }
}

TEST(PairMismatch, DrawsWhenEnabled) {
  MonteCarloParams params;
  params.include_pair_mismatch = true;
  const auto set = draw_perturbations(params);
  bool any = false;
  for (const auto& s : set) any |= s.z_pair_input != 0.0;
  EXPECT_TRUE(any);
}

TEST(PairMismatch, PelgromScalesInverselyWithGateArea) {
  ProcessPerturbation s;
  const double small = s.pair_vt_mismatch(kProc, {2e-6, 0.5e-6}, 1.0);
  const double large = s.pair_vt_mismatch(kProc, {8e-6, 2.0e-6}, 1.0);
  EXPECT_NEAR(small / large, 4.0, 1e-9);  // 16x the area -> 4x less mismatch
  EXPECT_THROW(s.pair_vt_mismatch(kProc, {0.0, 1e-6}, 1.0), PreconditionError);
}

TEST(PairMismatch, MismatchNeverImprovesRobustness) {
  const auto design = testing_support::reference_design();
  MonteCarloParams base_params;
  MonteCarloParams mm_params;
  mm_params.include_pair_mismatch = true;
  const auto base_set = draw_perturbations(base_params);
  const auto mm_set = draw_perturbations(mm_params);
  const scint::IntegratorContext ctx;
  scint::Spec tight;
  tight.dr_min_db = 96.05;  // at the reference design's margin
  const double base_rob = robustness(kProc, design, ctx, tight, base_set);
  const double mm_rob = robustness(kProc, design, ctx, tight, mm_set);
  EXPECT_LE(mm_rob, base_rob + 0.26);  // extra variation can only hurt (noise slack)
}

}  // namespace
}  // namespace anadex::yield
