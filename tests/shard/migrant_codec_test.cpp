#include "shard/migrants.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace anadex::shard {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Awkward exact values (negatives, denormal-ish magnitudes, infinities are
/// excluded by the problem domain) — the codec must round-trip doubles
/// bit-for-bit, including the rank/crowding annotations migrants carry.
moga::Population sample_population() {
  moga::Population pop(3);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].genes = {1.0 / 3.0 + static_cast<double>(i), -2.5e-13, 0.1 * static_cast<double>(i + 1)};
    pop[i].eval.objectives = {3.14159265358979e-3 * static_cast<double>(i + 1), 7.0};
    pop[i].eval.violations = {0.0, 1e-17 * static_cast<double>(i)};
    pop[i].rank = static_cast<int>(i);
    pop[i].crowding = i == 0 ? std::numeric_limits<double>::infinity() : 0.25 * static_cast<double>(i);
  }
  return pop;
}

/// Per-test fixture dir: ctest runs tests in parallel processes, so each
/// test needs its own directory or their setup/teardown races.
struct CodecDir {
  fs::path dir;
  explicit CodecDir(const char* name) : dir(std::string("shard_codec_") + name + ".dir") {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~CodecDir() { fs::remove_all(dir); }
};

TEST(ShardMigrantCodec, RoundTripsExactly) {
  CodecDir scope("roundtrip");
  const moga::Population original = sample_population();
  write_migrant_file(scope.dir, /*epoch=*/3, /*from_island=*/1, original);
  const fs::path path = scope.dir / migrant_file_name(3, 1);
  ASSERT_TRUE(fs::exists(path));
  const moga::Population loaded = read_migrant_file(path, 3, 1);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].genes, original[i].genes);
    EXPECT_EQ(loaded[i].eval.objectives, original[i].eval.objectives);
    EXPECT_EQ(loaded[i].eval.violations, original[i].eval.violations);
    EXPECT_EQ(loaded[i].rank, original[i].rank);
    EXPECT_EQ(loaded[i].crowding, original[i].crowding);
  }
}

TEST(ShardMigrantCodec, RewriteIsByteIdenticalAndAtomic) {
  // A relaunched worker republishes the epochs it replays; the rewrite must
  // produce the same bytes (so a reader racing the rename sees one of two
  // identical files) and leave no temp file behind.
  CodecDir scope("rewrite");
  const moga::Population pop = sample_population();
  write_migrant_file(scope.dir, 2, 0, pop);
  const fs::path path = scope.dir / migrant_file_name(2, 0);
  const std::string first = slurp(path);
  write_migrant_file(scope.dir, 2, 0, pop);
  EXPECT_EQ(slurp(path), first);
  for (const auto& entry : fs::directory_iterator(scope.dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"), std::string::npos);
  }
}

TEST(ShardMigrantCodec, RejectsCorruption) {
  CodecDir scope("corrupt");
  write_migrant_file(scope.dir, 1, 2, sample_population());
  const fs::path path = scope.dir / migrant_file_name(1, 2);
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x01;  // flip one bit mid-body
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  EXPECT_THROW(read_migrant_file(path, 1, 2), PreconditionError);
}

TEST(ShardMigrantCodec, RejectsWrongEpochOrIsland) {
  // The header carries (epoch, from_island) so a reader can never integrate
  // a stale file under a mixed-up name.
  CodecDir scope("mismatch");
  write_migrant_file(scope.dir, 4, 0, sample_population());
  const fs::path path = scope.dir / migrant_file_name(4, 0);
  EXPECT_THROW(read_migrant_file(path, 5, 0), PreconditionError);
  EXPECT_THROW(read_migrant_file(path, 4, 1), PreconditionError);
}

TEST(ShardMigrantCodec, RejectsTruncation) {
  CodecDir scope("truncate");
  write_migrant_file(scope.dir, 6, 3, sample_population());
  const fs::path path = scope.dir / migrant_file_name(6, 3);
  const std::string bytes = slurp(path);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes.substr(0, bytes.size() - 10);
  }
  EXPECT_THROW(read_migrant_file(path, 6, 3), PreconditionError);
}

}  // namespace
}  // namespace anadex::shard
