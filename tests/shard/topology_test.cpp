#include "shard/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.hpp"

namespace anadex::shard {
namespace {

TEST(ShardTopology, PartitionsEveryIslandExactlyOnce) {
  for (std::size_t islands : {1u, 3u, 4u, 7u, 16u}) {
    for (std::size_t shards = 1; shards <= islands; ++shards) {
      const Topology topo = Topology::make(islands, shards, /*seed=*/9);
      std::set<std::size_t> seen;
      for (std::size_t k = 0; k < shards; ++k) {
        const auto owned = topo.islands_of(k);
        EXPECT_FALSE(owned.empty()) << islands << "/" << shards << " shard " << k;
        for (std::size_t island : owned) {
          EXPECT_EQ(topo.shard_of(island), k);
          EXPECT_TRUE(seen.insert(island).second)
              << "island " << island << " assigned twice";
        }
      }
      EXPECT_EQ(seen.size(), islands);
    }
  }
}

TEST(ShardTopology, BalancedWithinOne) {
  const Topology topo = Topology::make(10, 4, 1);
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t owned = topo.islands_of(k).size();
    EXPECT_GE(owned, 10u / 4u);
    EXPECT_LE(owned, 10u / 4u + 1);
  }
}

TEST(ShardTopology, ArcsAreContiguousOnTheRotatedRing) {
  // shard_of must be monotone in the rotated island position, so every
  // shard's slice is one contiguous arc: exactly one ring edge enters and
  // one leaves each shard, which is what keeps the cross-shard exchange at
  // one migrant file per epoch per boundary.
  const Topology topo = Topology::make(12, 4, 77);
  for (std::size_t position = 0; position + 1 < 12; ++position) {
    const std::size_t a = (12 + position - topo.rotation) % 12;
    const std::size_t b = (12 + position + 1 - topo.rotation) % 12;
    EXPECT_LE(topo.shard_of(a), topo.shard_of(b));
  }
}

TEST(ShardTopology, RingNeighbours) {
  const Topology topo = Topology::make(5, 2, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(topo.successor(i), (i + 1) % 5);
    EXPECT_EQ(topo.predecessor(topo.successor(i)), i);
  }
}

TEST(ShardTopology, SeedStableAndSeedSensitive) {
  const Topology a = Topology::make(16, 4, 42);
  const Topology b = Topology::make(16, 4, 42);
  EXPECT_EQ(a.rotation, b.rotation);
  // The rotation is a hash of the seed; over a handful of seeds at least
  // two distinct rotations must appear (16 buckets, 8 seeds).
  std::set<std::size_t> rotations;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    rotations.insert(Topology::make(16, 4, seed).rotation);
  }
  EXPECT_GT(rotations.size(), 1u);
}

TEST(ShardTopology, SingleShardOwnsEverything) {
  const Topology topo = Topology::make(6, 1, 9);
  EXPECT_EQ(topo.islands_of(0).size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(topo.shard_of(i), 0u);
}

TEST(ShardTopology, RejectsDegenerateShapes) {
  EXPECT_THROW(Topology::make(0, 1, 1), PreconditionError);
  EXPECT_THROW(Topology::make(4, 0, 1), PreconditionError);
  EXPECT_THROW(Topology::make(4, 5, 1), PreconditionError);
}

}  // namespace
}  // namespace anadex::shard
