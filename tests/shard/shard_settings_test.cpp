// Validation table for sharded run settings: every degenerate shape must be
// rejected up front with an actionable message, and expt::Job must refuse
// sharded settings outright (shards execute via shard::run_sharded only).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "expt/job.hpp"
#include "expt/runner.hpp"
#include "problems/spec_suite.hpp"
#include "shard/coordinator.hpp"

namespace anadex::expt {
namespace {

RunSettings sharded_settings() {
  RunSettings s;
  s.algo = Algo::Island;
  s.spec = problems::spec_suite().front();
  s.population = 32;
  s.generations = 24;
  s.islands = 4;
  s.migration_interval = 6;
  s.seed = 9;
  s.shards = 2;
  s.shard_dir = "shard_settings_test.spool";
  return s;
}

TEST(ShardSettings, AcceptsAWellFormedShardedRun) {
  EXPECT_NO_THROW(validate_run_settings(sharded_settings()));
}

TEST(ShardSettings, RejectsDegenerateShapes) {
  struct Case {
    const char* label;
    void (*mutate)(RunSettings&);
  };
  const std::vector<Case> cases = {
      {"zero shards", [](RunSettings& s) { s.shards = 0; }},
      {"more shards than the 64 sanity cap", [](RunSettings& s) {
         s.shards = 65;
         s.islands = 128;
       }},
      {"more shards than islands", [](RunSettings& s) { s.shards = 5; }},
      {"no migration barrier to shard on",
       [](RunSettings& s) { s.migration_interval = 0; }},
      {"sharding a non-island algorithm", [](RunSettings& s) {
         s.algo = Algo::MESACGA;
         s.partitions = 4;
         s.mesacga_schedule = {4, 2, 1};
         s.phase1_cap = 10;
       }},
      {"nowhere to put the exchange spool", [](RunSettings& s) {
         s.shard_dir.clear();
         s.checkpoint_path.clear();
       }},
      {"history sampling spans shards", [](RunSettings& s) { s.record_history = true; }},
      {"tracing spans shards", [](RunSettings& s) { s.trace_path = "t.jsonl"; }},
  };
  for (const auto& c : cases) {
    RunSettings s = sharded_settings();
    c.mutate(s);
    EXPECT_THROW(validate_run_settings(s), PreconditionError) << c.label;
  }
}

TEST(ShardSettings, CheckpointPathAloneLocatesTheSpool) {
  RunSettings s = sharded_settings();
  s.shard_dir.clear();
  s.checkpoint_path = "run.cp";
  EXPECT_NO_THROW(validate_run_settings(s));
  EXPECT_EQ(shard::resolve_shard_dir(s), std::filesystem::path("run.cp.spool"));
  s.shard_dir = "elsewhere";
  EXPECT_EQ(shard::resolve_shard_dir(s), std::filesystem::path("elsewhere"));
}

TEST(ShardSettings, JobRefusesShardedSettings) {
  // An in-process Job cannot execute a sharded run; the CLI routes shards
  // to shard::run_sharded and everything else must fail loudly.
  EXPECT_THROW(Job::from_settings(sharded_settings()), PreconditionError);
}

TEST(ShardSettings, ShardKnobsStayOutOfTheConfigDigest) {
  // shards/shard_dir are pure execution knobs: the digest must not change,
  // or checkpoints could not move between shard counts (or to solo runs).
  RunSettings solo = sharded_settings();
  solo.shards = 1;
  solo.shard_dir.clear();
  EXPECT_EQ(run_config_digest(solo), run_config_digest(sharded_settings()));
}

}  // namespace
}  // namespace anadex::expt
