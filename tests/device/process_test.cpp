#include "device/process.hpp"

#include <gtest/gtest.h>

namespace anadex::device {
namespace {

TEST(Process, CornerNames) {
  EXPECT_EQ(corner_name(Corner::TT), "TT");
  EXPECT_EQ(corner_name(Corner::FF), "FF");
  EXPECT_EQ(corner_name(Corner::SS), "SS");
  EXPECT_EQ(corner_name(Corner::FS), "FS");
  EXPECT_EQ(corner_name(Corner::SF), "SF");
}

TEST(Process, TypicalValuesArePlausible018um) {
  const Process p = Process::typical();
  EXPECT_NEAR(p.vdd, 1.8, 1e-12);
  EXPECT_NEAR(p.lmin, 0.18e-6, 1e-12);
  EXPECT_GT(p.nmos.mu_cox, p.pmos.mu_cox);  // electrons faster than holes
  EXPECT_GT(p.nmos.vt0, 0.2);
  EXPECT_LT(p.nmos.vt0, 0.7);
  EXPECT_EQ(p.nmos.n_exp, 1.0);  // paper: n = 1 for NMOS
  EXPECT_EQ(p.pmos.n_exp, 2.0);  // paper: n = 2 for PMOS
  EXPECT_GT(p.pmos.esat, p.nmos.esat);  // holes saturate at higher field
}

TEST(Process, ParamsAccessorSelectsPolarity) {
  Process p = Process::typical();
  EXPECT_EQ(&p.params(Type::NMOS), &p.nmos);
  EXPECT_EQ(&p.params(Type::PMOS), &p.pmos);
  const Process& cp = p;
  EXPECT_EQ(&cp.params(Type::NMOS), &cp.nmos);
}

TEST(Process, TTCornerIsIdentity) {
  const Process p = Process::typical();
  const Process tt = p.at_corner(Corner::TT);
  EXPECT_EQ(tt.nmos.vt0, p.nmos.vt0);
  EXPECT_EQ(tt.pmos.mu_cox, p.pmos.mu_cox);
  EXPECT_EQ(tt.cox, p.cox);
}

TEST(Process, FastCornerLowersThresholdRaisesMobility) {
  const Process p = Process::typical();
  const Process ff = p.at_corner(Corner::FF);
  EXPECT_LT(ff.nmos.vt0, p.nmos.vt0);
  EXPECT_LT(ff.pmos.vt0, p.pmos.vt0);
  EXPECT_GT(ff.nmos.mu_cox, p.nmos.mu_cox);
  EXPECT_GT(ff.pmos.mu_cox, p.pmos.mu_cox);
}

TEST(Process, SlowCornerRaisesThresholdLowersMobility) {
  const Process p = Process::typical();
  const Process ss = p.at_corner(Corner::SS);
  EXPECT_GT(ss.nmos.vt0, p.nmos.vt0);
  EXPECT_LT(ss.nmos.mu_cox, p.nmos.mu_cox);
}

TEST(Process, CrossCornersMovePolaritiesOppositely) {
  const Process p = Process::typical();
  const Process fs = p.at_corner(Corner::FS);
  EXPECT_LT(fs.nmos.vt0, p.nmos.vt0);  // fast NMOS
  EXPECT_GT(fs.pmos.vt0, p.pmos.vt0);  // slow PMOS
  const Process sf = p.at_corner(Corner::SF);
  EXPECT_GT(sf.nmos.vt0, p.nmos.vt0);
  EXPECT_LT(sf.pmos.vt0, p.pmos.vt0);
}

TEST(Process, CrossCornersKeepAverageOxide) {
  const Process p = Process::typical();
  const Process fs = p.at_corner(Corner::FS);
  EXPECT_NEAR(fs.cox, p.cox, 1e-12);
  EXPECT_NEAR(fs.cap_density, p.cap_density, 1e-12);
}

TEST(Process, FFandSSMoveCapDensityOppositely) {
  const Process p = Process::typical();
  EXPECT_LT(p.at_corner(Corner::FF).cap_density, p.cap_density);
  EXPECT_GT(p.at_corner(Corner::SS).cap_density, p.cap_density);
}

TEST(Process, CornerShiftIsSymmetricInThreshold) {
  const Process p = Process::typical();
  const double up = p.at_corner(Corner::SS).nmos.vt0 - p.nmos.vt0;
  const double down = p.nmos.vt0 - p.at_corner(Corner::FF).nmos.vt0;
  EXPECT_NEAR(up, down, 1e-12);
}

}  // namespace
}  // namespace anadex::device
