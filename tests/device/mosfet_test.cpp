#include "device/mosfet.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::device {
namespace {

const Process kProc = Process::typical();

Bias sat_bias(double vgs, double vds = 1.0) { return Bias{vgs, vds, 0.0}; }

TEST(Threshold, ZeroBodyBiasGivesVt0) {
  EXPECT_DOUBLE_EQ(threshold(kProc.nmos, 0.0), kProc.nmos.vt0);
}

TEST(Threshold, BodyEffectRaisesThreshold) {
  const double vt0 = threshold(kProc.nmos, 0.0);
  const double vt1 = threshold(kProc.nmos, 0.5);
  const double vt2 = threshold(kProc.nmos, 1.0);
  EXPECT_GT(vt1, vt0);
  EXPECT_GT(vt2, vt1);
}

TEST(Threshold, NegativeVsbRejected) {
  EXPECT_THROW(threshold(kProc.nmos, -0.1), PreconditionError);
}

TEST(DrainCurrent, CutoffCarriesNothing) {
  const Geometry g{10e-6, 0.5e-6};
  EXPECT_EQ(drain_current(kProc.nmos, g, sat_bias(0.2)), 0.0);
  EXPECT_EQ(drain_current(kProc.nmos, g, sat_bias(kProc.nmos.vt0)), 0.0);
}

TEST(DrainCurrent, PositiveInStrongInversion) {
  const Geometry g{10e-6, 0.5e-6};
  EXPECT_GT(drain_current(kProc.nmos, g, sat_bias(0.8)), 0.0);
}

TEST(DrainCurrent, GeometryMustBePositive) {
  EXPECT_THROW(drain_current(kProc.nmos, Geometry{0.0, 1e-6}, sat_bias(0.8)),
               PreconditionError);
}

TEST(DrainCurrent, MonotoneInVgs) {
  const Geometry g{10e-6, 0.5e-6};
  double prev = 0.0;
  for (double vgs = 0.5; vgs <= 1.8; vgs += 0.05) {
    const double id = drain_current(kProc.nmos, g, sat_bias(vgs));
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(DrainCurrent, ProportionalToWidth) {
  const Bias b = sat_bias(0.8);
  const double i1 = drain_current(kProc.nmos, Geometry{10e-6, 0.5e-6}, b);
  const double i2 = drain_current(kProc.nmos, Geometry{20e-6, 0.5e-6}, b);
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
}

TEST(DrainCurrent, VelocitySaturationReducesCurrentVsSquareLaw) {
  // Short channel carries less than the square-law ratio when overdrive is
  // comparable to Esat*L.
  const Bias b = sat_bias(1.2);
  const double i_long = drain_current(kProc.nmos, Geometry{10e-6, 2.0e-6}, b);
  const double i_short = drain_current(kProc.nmos, Geometry{10e-6, 0.2e-6}, b);
  EXPECT_LT(i_short / i_long, 10.0);  // naive square law would give exactly 10
}

TEST(DrainCurrent, ChannelLengthModulationRaisesCurrentWithVds) {
  const Geometry g{10e-6, 0.5e-6};
  const double i1 = drain_current(kProc.nmos, g, Bias{0.8, 0.8, 0.0});
  const double i2 = drain_current(kProc.nmos, g, Bias{0.8, 1.6, 0.0});
  EXPECT_GT(i2, i1);
  EXPECT_LT(i2 / i1, 1.1);  // small-lambda effect
}

TEST(DrainCurrent, TriodeBelowSaturationCurrent) {
  const Geometry g{10e-6, 0.5e-6};
  const OperatingPoint op = solve_op(kProc.nmos, g, sat_bias(0.9));
  const double i_triode =
      drain_current(kProc.nmos, g, Bias{0.9, op.vdsat * 0.3, 0.0});
  const double i_sat = drain_current(kProc.nmos, g, Bias{0.9, 1.0, 0.0});
  EXPECT_LT(i_triode, i_sat);
  EXPECT_GT(i_triode, 0.0);
}

TEST(DrainCurrent, ContinuousAcrossTriodeSaturationBoundary) {
  const Geometry g{10e-6, 0.5e-6};
  const OperatingPoint op = solve_op(kProc.nmos, g, sat_bias(0.9));
  const double just_below =
      drain_current(kProc.nmos, g, Bias{0.9, op.vdsat * (1.0 - 1e-6), 0.0});
  const double just_above =
      drain_current(kProc.nmos, g, Bias{0.9, op.vdsat * (1.0 + 1e-6), 0.0});
  EXPECT_NEAR(just_below / just_above, 1.0, 1e-3);
}

TEST(SolveOp, RegionClassification) {
  const Geometry g{10e-6, 0.5e-6};
  EXPECT_EQ(solve_op(kProc.nmos, g, sat_bias(0.2)).region, Region::Cutoff);
  EXPECT_EQ(solve_op(kProc.nmos, g, Bias{0.9, 0.05, 0.0}).region, Region::Triode);
  EXPECT_EQ(solve_op(kProc.nmos, g, Bias{0.9, 1.2, 0.0}).region, Region::Saturation);
}

TEST(SolveOp, VdsatBelowOverdrive) {
  // Velocity saturation: VDsat = EL*Vov/(EL + Vov) < Vov.
  const Geometry g{10e-6, 0.25e-6};
  const auto op = solve_op(kProc.nmos, g, sat_bias(1.2));
  EXPECT_GT(op.vdsat, 0.0);
  EXPECT_LT(op.vdsat, op.vov);
}

TEST(SolveOp, CutoffHasZeroedSmallSignal) {
  const Geometry g{10e-6, 0.5e-6};
  const auto op = solve_op(kProc.nmos, g, sat_bias(0.1));
  EXPECT_EQ(op.id, 0.0);
  EXPECT_EQ(op.gm, 0.0);
  EXPECT_EQ(op.gds, 0.0);
}

/// Analytic gm/gds must match numeric differentiation of the DC model —
/// swept over bias and geometry (the core property of the device layer).
struct OpCase {
  double w;
  double l;
  double vgs;
  double vds;
  Type type;
};

class AnalyticDerivatives : public ::testing::TestWithParam<OpCase> {};

TEST_P(AnalyticDerivatives, GmMatchesNumericDerivative) {
  const auto c = GetParam();
  const DeviceParams& params = kProc.params(c.type);
  const Geometry g{c.w, c.l};
  const Bias b{c.vgs, c.vds, 0.0};
  const auto op = solve_op(params, g, b);
  ASSERT_EQ(op.region, Region::Saturation);
  const double h = 1e-6;
  const double up = drain_current(params, g, Bias{c.vgs + h, c.vds, 0.0});
  const double dn = drain_current(params, g, Bias{c.vgs - h, c.vds, 0.0});
  const double numeric = (up - dn) / (2.0 * h);
  EXPECT_NEAR(op.gm, numeric, 2e-4 * std::abs(numeric) + 1e-12);
}

TEST_P(AnalyticDerivatives, GdsMatchesNumericDerivative) {
  const auto c = GetParam();
  const DeviceParams& params = kProc.params(c.type);
  const Geometry g{c.w, c.l};
  const auto op = solve_op(params, g, Bias{c.vgs, c.vds, 0.0});
  ASSERT_EQ(op.region, Region::Saturation);
  const double h = 1e-6;
  const double up = drain_current(params, g, Bias{c.vgs, c.vds + h, 0.0});
  const double dn = drain_current(params, g, Bias{c.vgs, c.vds - h, 0.0});
  const double numeric = (up - dn) / (2.0 * h);
  EXPECT_NEAR(op.gds, numeric, 2e-4 * std::abs(numeric) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, AnalyticDerivatives,
    ::testing::Values(OpCase{10e-6, 0.5e-6, 0.7, 1.0, Type::NMOS},
                      OpCase{10e-6, 0.5e-6, 1.0, 1.5, Type::NMOS},
                      OpCase{50e-6, 0.18e-6, 0.8, 1.2, Type::NMOS},
                      OpCase{2e-6, 2.0e-6, 1.2, 1.0, Type::NMOS},
                      OpCase{10e-6, 0.5e-6, 0.8, 1.0, Type::PMOS},
                      OpCase{80e-6, 0.3e-6, 1.1, 1.4, Type::PMOS},
                      OpCase{5e-6, 1.0e-6, 0.65, 0.9, Type::PMOS}));

TEST(VgsForCurrent, RoundTripsThroughDrainCurrent) {
  const Geometry g{20e-6, 0.5e-6};
  for (double target : {1e-6, 10e-6, 100e-6, 500e-6}) {
    const double vgs = vgs_for_current(kProc.nmos, g, target, 1.0, 0.0);
    const double id = drain_current(kProc.nmos, g, Bias{vgs, 1.0, 0.0});
    EXPECT_NEAR(id / target, 1.0, 1e-5);
  }
}

TEST(VgsForCurrent, UnreachableCurrentReturnsRail) {
  const Geometry g{1e-6, 2.0e-6};
  EXPECT_EQ(vgs_for_current(kProc.nmos, g, 1.0, 1.0, 0.0, 1.8), 1.8);
}

TEST(VgsForCurrent, RejectsNonPositiveTarget) {
  const Geometry g{10e-6, 0.5e-6};
  EXPECT_THROW(vgs_for_current(kProc.nmos, g, 0.0, 1.0, 0.0), PreconditionError);
}

TEST(VgsForCurrent, RespectsBodyBias) {
  const Geometry g{20e-6, 0.5e-6};
  const double v0 = vgs_for_current(kProc.nmos, g, 50e-6, 1.0, 0.0);
  const double v1 = vgs_for_current(kProc.nmos, g, 50e-6, 1.0, 0.5);
  EXPECT_GT(v1, v0);  // body effect demands more gate drive
}

TEST(Capacitances, SaturationSplitsGateCapTwoThirdsToSource) {
  const Geometry g{10e-6, 1.0e-6};
  const auto caps = capacitances(kProc, g, Region::Saturation);
  const double cox_total = g.w * g.l * kProc.cox;
  const double overlap = kProc.cov_per_w * g.w;
  EXPECT_NEAR(caps.cgs, (2.0 / 3.0) * cox_total + overlap, 1e-18);
  EXPECT_NEAR(caps.cgd, overlap, 1e-18);
}

TEST(Capacitances, TriodeSplitsGateCapEvenly) {
  const Geometry g{10e-6, 1.0e-6};
  const auto caps = capacitances(kProc, g, Region::Triode);
  EXPECT_NEAR(caps.cgs, caps.cgd, 1e-20);
}

TEST(Capacitances, CutoffKeepsOnlyOverlap) {
  const Geometry g{10e-6, 1.0e-6};
  const auto caps = capacitances(kProc, g, Region::Cutoff);
  EXPECT_NEAR(caps.cgs, kProc.cov_per_w * g.w, 1e-20);
}

TEST(Capacitances, JunctionCapScalesWithWidth) {
  const auto narrow = capacitances(kProc, Geometry{5e-6, 0.5e-6}, Region::Saturation);
  const auto wide = capacitances(kProc, Geometry{50e-6, 0.5e-6}, Region::Saturation);
  EXPECT_GT(wide.cdb, narrow.cdb * 5.0);
}

}  // namespace
}  // namespace anadex::device
