#include "device/characterize.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::device {
namespace {

const Process kProc = Process::typical();
const Geometry kGeom{10e-6, 0.5e-6};

TEST(Characterize, SweepValidation) {
  Sweep bad;
  bad.points = 0;
  EXPECT_THROW(transfer_curve(kProc.nmos, kGeom, 1.0, bad), PreconditionError);
  bad = Sweep{1.0, 0.0, 5};
  EXPECT_THROW(transfer_curve(kProc.nmos, kGeom, 1.0, bad), PreconditionError);
}

TEST(Characterize, TransferCurveShape) {
  const auto series = transfer_curve(kProc.nmos, kGeom, 1.0, Sweep{0.0, 1.8, 19});
  EXPECT_EQ(series.num_rows(), 19u);
  EXPECT_EQ(series.num_columns(), 4u);
  // Monotone non-decreasing current; zero below threshold.
  double prev = -1.0;
  for (std::size_t r = 0; r < series.num_rows(); ++r) {
    EXPECT_GE(series.at(r, 1), prev);
    prev = series.at(r, 1);
  }
  EXPECT_EQ(series.at(0, 1), 0.0);                       // VGS = 0: off
  EXPECT_GT(series.at(series.num_rows() - 1, 1), 1e-5);  // strongly on at 1.8 V
}

TEST(Characterize, GmOverIdDecreasesWithOverdrive) {
  const auto series = gm_over_id_profile(kProc.nmos, kGeom, 1.0, Sweep{0.5, 1.8, 27});
  ASSERT_GT(series.num_rows(), 5u);
  double prev = 1e9;
  for (std::size_t r = 0; r < series.num_rows(); ++r) {
    EXPECT_LE(series.at(r, 1), prev + 1e-9);
    prev = series.at(r, 1);
  }
  // Square-law ceiling: gm/ID <= 2/Vov.
  for (std::size_t r = 0; r < series.num_rows(); ++r) {
    EXPECT_LE(series.at(r, 1), 2.0 / series.at(r, 0) + 1e-9);
  }
}

TEST(Characterize, OutputCurvesFamilyOrdered) {
  const std::vector<double> vgs{0.7, 0.9, 1.1};
  const auto series = output_curves(kProc.nmos, kGeom, vgs, Sweep{0.0, 1.8, 13});
  EXPECT_EQ(series.num_columns(), 4u);
  for (std::size_t r = 1; r < series.num_rows(); ++r) {
    // More gate drive -> more current, at every VDS.
    EXPECT_LE(series.at(r, 1), series.at(r, 2));
    EXPECT_LE(series.at(r, 2), series.at(r, 3));
  }
}

TEST(Characterize, OutputCurvesRequireVgsValues) {
  EXPECT_THROW(output_curves(kProc.nmos, kGeom, {}, Sweep{}), PreconditionError);
}

TEST(Characterize, CornerCurvesOrderFFAboveSS) {
  const auto series = corner_transfer_curves(kProc, Type::NMOS, kGeom, 1.0,
                                             Sweep{0.8, 1.6, 9});
  const auto names = series.column_names();
  const std::size_t ff = series.column_index("id@FF");
  const std::size_t ss = series.column_index("id@SS");
  for (std::size_t r = 0; r < series.num_rows(); ++r) {
    EXPECT_GT(series.at(r, ff), series.at(r, ss));
  }
}

TEST(Characterize, SinglePointSweep) {
  const auto series = transfer_curve(kProc.nmos, kGeom, 1.0, Sweep{0.9, 1.8, 1});
  EXPECT_EQ(series.num_rows(), 1u);
  EXPECT_EQ(series.at(0, 0), 0.9);
}

}  // namespace
}  // namespace anadex::device
