// The --batch-eval execution knob at the engine layer: lane-group claiming
// must be bit-identical to per-item evaluation across modes and thread
// counts, the Auto heuristic must only engage lanes when a batch fills a
// group, a throwing lane evaluator must fall back per item (counted, not
// fatal), and GuardedProblem's fault accounting must match scalar mode
// exactly when lanes re-run faulty items.
#include "engine/eval_engine.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "engine/simd/lane_evaluator.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "robust/guarded_problem.hpp"

namespace anadex::engine {
namespace {

std::vector<Genome> make_genomes(const moga::Problem& problem, std::size_t count) {
  const auto bounds = problem.bounds();
  std::vector<Genome> genomes(count);
  for (std::size_t i = 0; i < count; ++i) {
    genomes[i].resize(bounds.size());
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      const double t = static_cast<double>(i * bounds.size() + k + 1) /
                       static_cast<double>(count * bounds.size() + 1);
      genomes[i][k] = bounds[k].lower + t * (bounds[k].upper - bounds[k].lower);
    }
  }
  return genomes;
}

void expect_evaluations_eq(const std::vector<moga::Evaluation>& a,
                           const std::vector<moga::Evaluation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "item " << i;
    EXPECT_EQ(a[i].violations, b[i].violations) << "item " << i;
  }
}

/// A lane evaluator whose lane path always throws: the engine must recover
/// by evaluating the group's items one by one through evaluate().
class ThrowingLanesProblem final : public moga::Problem, public LaneEvaluator {
 public:
  explicit ThrowingLanesProblem(const moga::Problem& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name() + "+throwing-lanes"; }
  std::size_t num_variables() const override { return inner_.num_variables(); }
  std::size_t num_objectives() const override { return inner_.num_objectives(); }
  std::size_t num_constraints() const override { return inner_.num_constraints(); }
  std::vector<moga::VariableBound> bounds() const override { return inner_.bounds(); }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    inner_.evaluate(genes, out);
  }

  bool lanes_supported() const override { return true; }
  std::size_t preferred_lane_width() const override { return 8; }
  void evaluate_lanes(std::span<const std::span<const double>>,
                      std::span<moga::Evaluation* const>) const override {
    throw std::runtime_error("lane path unavailable");
  }

 private:
  const moga::Problem& inner_;
};

TEST(BatchEvalKnob, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_batch_eval("scalar"), BatchEval::Scalar);
  EXPECT_EQ(parse_batch_eval("simd"), BatchEval::Simd);
  EXPECT_EQ(parse_batch_eval("auto"), BatchEval::Auto);
  for (const BatchEval mode : {BatchEval::Scalar, BatchEval::Simd, BatchEval::Auto}) {
    EXPECT_EQ(parse_batch_eval(to_string(mode)), mode);
  }
  EXPECT_THROW(parse_batch_eval("vector"), std::exception);
}

TEST(BatchEvalKnob, SimdModeBitIdenticalAcrossThreadCounts) {
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const auto genomes = make_genomes(problem, 37);  // ragged: 2 full groups + 5

  const EvalEngine scalar(problem, 1);
  std::vector<moga::Evaluation> reference(genomes.size());
  scalar.evaluate_batch(genomes, reference);
  EXPECT_EQ(scalar.lane_groups(), 0u);  // Scalar is the default mode

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    EvalEngine simd(problem, threads);
    simd.set_batch_eval(BatchEval::Simd);
    std::vector<moga::Evaluation> out(genomes.size());
    simd.evaluate_batch(genomes, out);
    expect_evaluations_eq(out, reference);
    EXPECT_GT(simd.lane_groups(), 0u) << threads << " threads";
    EXPECT_EQ(simd.lane_items() + simd.lane_fallbacks(), genomes.size())
        << threads << " threads";
  }
}

TEST(BatchEvalKnob, AutoEngagesLanesOnlyWhenBatchFillsAGroup) {
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  const std::size_t width = problem.preferred_lane_width();

  EvalEngine eval(problem, 1);
  eval.set_batch_eval(BatchEval::Auto);

  const auto small = make_genomes(problem, width - 1);
  std::vector<moga::Evaluation> small_out(small.size());
  eval.evaluate_batch(small, small_out);
  EXPECT_EQ(eval.lane_groups(), 0u);  // under one group: stays scalar

  const auto full = make_genomes(problem, width);
  std::vector<moga::Evaluation> full_out(full.size());
  eval.evaluate_batch(full, full_out);
  EXPECT_GT(eval.lane_groups(), 0u);  // one full group: lanes engage

  // Simd mode forces lanes even under one group's worth of items.
  EvalEngine forced(problem, 1);
  forced.set_batch_eval(BatchEval::Simd);
  std::vector<moga::Evaluation> forced_out(small.size());
  forced.evaluate_batch(small, forced_out);
  EXPECT_GT(forced.lane_groups(), 0u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(forced_out[i].objectives, small_out[i].objectives) << "item " << i;
    EXPECT_EQ(forced_out[i].violations, small_out[i].violations) << "item " << i;
  }
}

TEST(BatchEvalKnob, ThrowingLaneEvaluatorFallsBackPerItem) {
  const problems::IntegratorProblem inner(problems::spec_suite().front());
  const ThrowingLanesProblem problem(inner);
  const auto genomes = make_genomes(problem, 19);

  const EvalEngine scalar(inner, 1);
  std::vector<moga::Evaluation> reference(genomes.size());
  scalar.evaluate_batch(genomes, reference);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EvalEngine eval(problem, threads);
    eval.set_batch_eval(BatchEval::Simd);
    std::vector<moga::Evaluation> out(genomes.size());
    eval.evaluate_batch(genomes, out);
    expect_evaluations_eq(out, reference);
    EXPECT_GT(eval.lane_fallbacks(), 0u) << threads << " threads";
    EXPECT_EQ(eval.lane_items(), 0u) << threads << " threads";
  }
}

TEST(BatchEvalKnob, GuardedProblemFaultAccountingMatchesScalarMode) {
  // Hostile genomes (NaN bias current) fault inside the kernels; the
  // guard's lane path must re-run faulty lanes scalar so the penalized
  // results AND the fault report match scalar mode exactly.
  const auto inner = std::make_shared<const problems::IntegratorProblem>(
      problems::spec_suite().front());
  const auto genomes = [&] {
    auto g = make_genomes(*inner, 24);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    g[2][problems::kIbias] = nan;
    g[11][problems::kW1] = nan;
    g[17][problems::kCc] = nan;
    return g;
  }();

  robust::GuardPolicy policy;  // default: two retries then penalize
  const robust::GuardedProblem scalar_guard(inner, policy);
  const EvalEngine scalar(scalar_guard, 1);
  std::vector<moga::Evaluation> reference(genomes.size());
  scalar.evaluate_batch(genomes, reference);
  const robust::FaultReport scalar_report = scalar_guard.report();
  EXPECT_GT(scalar_report.total_faults(), 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const robust::GuardedProblem guard(inner, policy);
    EvalEngine eval(guard, threads);
    eval.set_batch_eval(BatchEval::Simd);
    std::vector<moga::Evaluation> out(genomes.size());
    eval.evaluate_batch(genomes, out);
    expect_evaluations_eq(out, reference);
    const robust::FaultReport report = guard.report();
    EXPECT_EQ(report.total_faults(), scalar_report.total_faults());
    EXPECT_EQ(report.retries, scalar_report.retries);
    EXPECT_EQ(report.penalized, scalar_report.penalized);
    EXPECT_EQ(report.recovered, scalar_report.recovered);
  }
}

TEST(BatchEvalKnob, DedupCacheComposesWithLanes) {
  // Duplicate genomes within a batch: the cache serves duplicates, the
  // lane path evaluates the distinct remainder, results stay identical.
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  auto genomes = make_genomes(problem, 32);
  for (std::size_t i = 1; i < genomes.size(); i += 3) genomes[i] = genomes[0];

  const EvalEngine scalar(problem, 1);
  std::vector<moga::Evaluation> reference(genomes.size());
  scalar.evaluate_batch(genomes, reference);

  EvalEngine cached(problem, 1, nullptr, /*cache_capacity=*/64);
  cached.set_batch_eval(BatchEval::Simd);
  std::vector<moga::Evaluation> out(genomes.size());
  cached.evaluate_batch(genomes, out);
  expect_evaluations_eq(out, reference);
  EXPECT_GT(cached.stats().cache_hits(), 0u);
  EXPECT_GT(cached.lane_groups(), 0u);
}

}  // namespace
}  // namespace anadex::engine
