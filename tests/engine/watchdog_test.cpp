// Evaluation-watchdog behavior: a stuck batch is cancelled at the deadline
// and converted into Timeout penalties by the guard; a generous deadline
// never fires and never perturbs results.
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "engine/eval_engine.hpp"
#include "problems/analytic.hpp"
#include "robust/fault_injection.hpp"
#include "robust/guarded_problem.hpp"

namespace anadex::engine {
namespace {

std::shared_ptr<const moga::Problem> zdt1() {
  return std::shared_ptr<const moga::Problem>(problems::make_zdt1(4));
}

moga::Population make_members(std::size_t n) {
  moga::Population members(n);
  for (std::size_t i = 0; i < n; ++i) {
    members[i].genes = {0.1 + 0.01 * static_cast<double>(i), 0.2, 0.3, 0.4};
  }
  return members;
}

TEST(Watchdog, CancelsAStuckBatchAndPenalizesAsTimeouts) {
  // Every evaluation busy-spins for billions of iterations — minutes of
  // work if the watchdog were broken — but polls the cancel token, so a
  // 50 ms deadline ends the batch almost immediately.
  robust::FaultInjectionConfig config;
  config.slow_rate = 1.0;
  config.slow_spin_iterations = 3'000'000'000ULL;
  auto injector = std::make_shared<robust::FaultInjectingProblem>(zdt1(), config);

  CancelToken token;
  injector->set_cancel_token(&token);
  robust::GuardPolicy policy;
  policy.max_retries = 1;
  robust::GuardedProblem guarded(injector, policy);
  guarded.set_cancel_token(&token);

  const EvalEngine eval(guarded, 2, nullptr, 0, EvalWatchdog{&token, 0.05});
  auto members = make_members(4);
  eval.evaluate_members(members);

  EXPECT_GE(eval.watchdog_fires(), 1u);
  const auto report = guarded.report();
  EXPECT_GE(report.timeouts, 1u);
  EXPECT_EQ(report.penalized, members.size());
  for (const auto& member : members) {
    for (double objective : member.eval.objectives) {
      EXPECT_EQ(objective, policy.penalty_objective);
    }
  }
  // Disarming the watchdog reset the token, so the next batch starts clean.
  EXPECT_FALSE(token.requested());
}

TEST(Watchdog, GenerousDeadlineNeverFiresAndNeverChangesResults) {
  auto problem = zdt1();
  const EvalEngine plain(*problem, 2);
  auto expected = make_members(6);
  plain.evaluate_members(expected);

  CancelToken token;
  robust::GuardPolicy policy;
  robust::GuardedProblem guarded(problem, policy);
  guarded.set_cancel_token(&token);
  const EvalEngine watched(guarded, 2, nullptr, 0, EvalWatchdog{&token, 1000.0});
  auto members = make_members(6);
  watched.evaluate_members(members);

  EXPECT_EQ(watched.watchdog_fires(), 0u);
  EXPECT_EQ(guarded.report().total_faults(), 0u);
  ASSERT_EQ(members.size(), expected.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(members[i].eval.objectives, expected[i].eval.objectives);
    EXPECT_EQ(members[i].eval.violations, expected[i].eval.violations);
  }
}

TEST(Watchdog, RejectsNonFiniteDeadlines) {
  auto problem = zdt1();
  CancelToken token;
  EXPECT_THROW(
      EvalEngine(*problem, 1, nullptr, 0,
                 EvalWatchdog{&token, std::numeric_limits<double>::quiet_NaN()}),
      PreconditionError);
}

}  // namespace
}  // namespace anadex::engine
