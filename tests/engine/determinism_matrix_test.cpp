// The determinism matrix (docs/engine.md): every evolver must produce a
// bit-identical final population, front and evaluation count for every
// evaluation thread count AND every eval-cache capacity, and a checkpoint
// taken under one thread/cache setting must resume bit-identically under
// another — `threads` and `eval_cache` are execution knobs, never part of
// the result.
#include <cstddef>
#include <sstream>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "moga/nsga2.hpp"
#include "moga/scalarize.hpp"
#include "moga/serialize.hpp"
#include "moga/spea2.hpp"
#include "problems/analytic.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::engine {
namespace {

const std::size_t kThreadMatrix[] = {2, 8};

std::string exact_bytes(const moga::Population& population) {
  std::ostringstream os;
  moga::save_population_exact(os, population);
  return os.str();
}

// ---- threads in {1, 2, 8} produce identical results -----------------------

TEST(DeterminismMatrix, Nsga2IsThreadCountInvariant) {
  const auto problem = problems::make_kur();
  moga::Nsga2Params params;
  params.population_size = 16;
  params.generations = 10;
  params.seed = 5;
  const auto serial = moga::run_nsga2(*problem, params);  // threads = 1
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = moga::run_nsga2(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.population), exact_bytes(serial.population))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

TEST(DeterminismMatrix, Spea2IsThreadCountInvariant) {
  const auto problem = problems::make_kur();
  moga::Spea2Params params;
  params.population_size = 16;
  params.archive_size = 12;
  params.generations = 10;
  params.seed = 5;
  const auto serial = moga::run_spea2(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = moga::run_spea2(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.archive), exact_bytes(serial.archive))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

TEST(DeterminismMatrix, LocalOnlyIsThreadCountInvariant) {
  const auto problem = problems::make_sch();
  sacga::LocalOnlyParams params;
  params.population_size = 16;
  params.partitions = 4;
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.generations = 10;
  params.seed = 7;
  const auto serial = sacga::run_local_only(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = sacga::run_local_only(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.population), exact_bytes(serial.population))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

TEST(DeterminismMatrix, SacgaIsThreadCountInvariant) {
  const auto problem = problems::make_sch();
  sacga::SacgaParams params;
  params.population_size = 16;
  params.partitions = 4;
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.phase1_max_generations = 6;
  params.span = 16;
  params.span_is_total_budget = true;
  params.seed = 3;
  const auto serial = sacga::run_sacga(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = sacga::run_sacga(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.population), exact_bytes(serial.population))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

TEST(DeterminismMatrix, MesacgaIsThreadCountInvariant) {
  const auto problem = problems::make_sch();
  sacga::MesacgaParams params;
  params.population_size = 16;
  params.partition_schedule = {4, 2, 1};
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.phase1_max_generations = 4;
  params.span = 4;
  params.seed = 11;
  const auto serial = sacga::run_mesacga(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = sacga::run_mesacga(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.population), exact_bytes(serial.population))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

TEST(DeterminismMatrix, IslandGaIsThreadCountInvariant) {
  const auto problem = problems::make_kur();
  sacga::IslandParams params;
  params.islands = 3;
  params.island_population = 8;
  params.generations = 9;
  params.migration_interval = 4;
  params.migrants = 1;
  params.seed = 13;
  const auto serial = sacga::run_island_ga(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = sacga::run_island_ga(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.population), exact_bytes(serial.population))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.migrations, serial.migrations);
  }
}

TEST(DeterminismMatrix, WeightedSumIsThreadCountInvariant) {
  const auto problem = problems::make_sch();
  moga::WeightedSumParams params;
  params.weight_count = 4;
  params.population_size = 12;
  params.generations_per_weight = 8;
  params.seed = 17;
  const auto serial = moga::run_weighted_sum(*problem, params);
  for (const std::size_t threads : kThreadMatrix) {
    params.threads = threads;
    const auto parallel = moga::run_weighted_sum(*problem, params);
    EXPECT_EQ(exact_bytes(parallel.front), exact_bytes(serial.front))
        << "threads = " << threads;
    EXPECT_EQ(exact_bytes(parallel.all_winners), exact_bytes(serial.all_winners));
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
  }
}

// ---- eval cache on/off x threads {1, 2, 8} produce identical results ------

/// Runs the evolver once without the cache (serial), then with a 64-entry
/// dedup cache under 1, 2 and 8 evaluation threads. Every cell of the
/// matrix must produce the same bytes and the same requested-evaluation
/// count; only the distinct-evaluation accounting may differ.
template <class Params, class Run, class Bytes>
void expect_cache_invariant(const moga::Problem& problem, Params base, Run run,
                            Bytes bytes) {
  const auto baseline = run(problem, base);  // eval_cache = 0, threads = 1
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    Params cached = base;
    cached.threads = threads;
    cached.eval_cache = 64;
    const auto with_cache = run(problem, cached);
    EXPECT_EQ(bytes(with_cache), bytes(baseline)) << "threads = " << threads;
    EXPECT_EQ(with_cache.evaluations, baseline.evaluations);
    EXPECT_EQ(with_cache.eval_stats.requested, baseline.eval_stats.requested);
    // The cache never invents work: dispatched <= requested.
    EXPECT_LE(with_cache.eval_stats.evaluated, with_cache.eval_stats.requested);
    EXPECT_EQ(with_cache.eval_stats.evaluated + with_cache.eval_stats.cache_hits(),
              with_cache.eval_stats.requested);
  }
}

TEST(DeterminismMatrix, Nsga2IsCacheInvariant) {
  const auto problem = problems::make_kur();
  moga::Nsga2Params params;
  params.population_size = 16;
  params.generations = 10;
  params.seed = 5;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const moga::Nsga2Params& q) {
                           return moga::run_nsga2(p, q);
                         },
                         [](const moga::Nsga2Result& r) {
                           return exact_bytes(r.population) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, Spea2IsCacheInvariant) {
  const auto problem = problems::make_kur();
  moga::Spea2Params params;
  params.population_size = 16;
  params.archive_size = 12;
  params.generations = 10;
  params.seed = 5;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const moga::Spea2Params& q) {
                           return moga::run_spea2(p, q);
                         },
                         [](const moga::Spea2Result& r) {
                           return exact_bytes(r.archive) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, LocalOnlyIsCacheInvariant) {
  const auto problem = problems::make_sch();
  sacga::LocalOnlyParams params;
  params.population_size = 16;
  params.partitions = 4;
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.generations = 10;
  params.seed = 7;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const sacga::LocalOnlyParams& q) {
                           return sacga::run_local_only(p, q);
                         },
                         [](const sacga::LocalOnlyResult& r) {
                           return exact_bytes(r.population) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, SacgaIsCacheInvariant) {
  const auto problem = problems::make_sch();
  sacga::SacgaParams params;
  params.population_size = 16;
  params.partitions = 4;
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.phase1_max_generations = 6;
  params.span = 16;
  params.span_is_total_budget = true;
  params.seed = 3;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const sacga::SacgaParams& q) {
                           return sacga::run_sacga(p, q);
                         },
                         [](const sacga::SacgaResult& r) {
                           return exact_bytes(r.population) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, MesacgaIsCacheInvariant) {
  const auto problem = problems::make_sch();
  sacga::MesacgaParams params;
  params.population_size = 16;
  params.partition_schedule = {4, 2, 1};
  params.axis_objective = 0;
  params.axis_lo = 0.0;
  params.axis_hi = 4.0;
  params.phase1_max_generations = 4;
  params.span = 4;
  params.seed = 11;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const sacga::MesacgaParams& q) {
                           return sacga::run_mesacga(p, q);
                         },
                         [](const sacga::MesacgaResult& r) {
                           return exact_bytes(r.population) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, IslandGaIsCacheInvariant) {
  const auto problem = problems::make_kur();
  sacga::IslandParams params;
  params.islands = 3;
  params.island_population = 8;
  params.generations = 9;
  params.migration_interval = 4;
  params.migrants = 1;
  params.seed = 13;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const sacga::IslandParams& q) {
                           return sacga::run_island_ga(p, q);
                         },
                         [](const sacga::IslandResult& r) {
                           return exact_bytes(r.population) + exact_bytes(r.front);
                         });
}

TEST(DeterminismMatrix, WeightedSumIsCacheInvariant) {
  const auto problem = problems::make_sch();
  moga::WeightedSumParams params;
  params.weight_count = 4;
  params.population_size = 12;
  params.generations_per_weight = 8;
  params.seed = 17;
  expect_cache_invariant(*problem, params,
                         [](const moga::Problem& p, const moga::WeightedSumParams& q) {
                           return moga::run_weighted_sum(p, q);
                         },
                         [](const moga::WeightedSumResult& r) {
                           return exact_bytes(r.front) + exact_bytes(r.all_winners);
                         });
}

// ---- a checkpoint under threads = 8 resumes bit-identically serially ------

/// Runs the evolver serially end-to-end, then snapshots a run under 8
/// evaluation threads and resumes the FIRST (earliest) snapshot with one
/// thread. Both paths must land on the same bytes.
template <class Params, class Run>
void expect_cross_thread_resume(const moga::Problem& problem, Params base, Run run) {
  const auto full = run(problem, base);  // threads = 1 throughout

  Params snapshotting = base;
  snapshotting.threads = 8;
  snapshotting.snapshot_every = 3;
  std::vector<std::remove_cvref_t<decltype(*base.resume)>> states;
  snapshotting.on_snapshot = [&](const auto& s) { states.push_back(s); };
  (void)run(problem, snapshotting);
  ASSERT_FALSE(states.empty());

  Params resumed_params = base;  // back to threads = 1
  resumed_params.resume = &states.front();
  const auto resumed = run(problem, resumed_params);
  EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
  EXPECT_EQ(resumed.evaluations, full.evaluations);
}

TEST(DeterminismMatrix, Nsga2CheckpointCrossesThreadCounts) {
  const auto problem = problems::make_sch();
  moga::Nsga2Params base;
  base.population_size = 16;
  base.generations = 10;
  base.seed = 5;
  expect_cross_thread_resume(*problem, base,
                             [](const moga::Problem& p, const moga::Nsga2Params& params) {
                               return moga::run_nsga2(p, params);
                             });
}

TEST(DeterminismMatrix, Spea2CheckpointCrossesThreadCounts) {
  const auto problem = problems::make_sch();
  moga::Spea2Params base;
  base.population_size = 16;
  base.archive_size = 12;
  base.generations = 10;
  base.seed = 5;
  expect_cross_thread_resume(*problem, base,
                             [](const moga::Problem& p, const moga::Spea2Params& params) {
                               return moga::run_spea2(p, params);
                             });
}

TEST(DeterminismMatrix, SacgaCheckpointCrossesThreadCounts) {
  const auto problem = problems::make_sch();
  sacga::SacgaParams base;
  base.population_size = 16;
  base.partitions = 4;
  base.axis_objective = 0;
  base.axis_lo = 0.0;
  base.axis_hi = 4.0;
  base.phase1_max_generations = 6;
  base.span = 16;
  base.span_is_total_budget = true;
  base.seed = 3;
  expect_cross_thread_resume(*problem, base,
                             [](const moga::Problem& p, const sacga::SacgaParams& params) {
                               return sacga::run_sacga(p, params);
                             });
}

// ---- a checkpoint under a cache resumes bit-identically without one -------

/// Snapshots a cached parallel run, then resumes its earliest snapshot with
/// the cache off and one thread. Checkpoint bytes carry no cache state, so
/// both paths must land on the same result.
template <class Params, class Run>
void expect_cross_cache_resume(const moga::Problem& problem, Params base, Run run) {
  const auto full = run(problem, base);  // eval_cache = 0, threads = 1

  Params snapshotting = base;
  snapshotting.threads = 2;
  snapshotting.eval_cache = 64;
  snapshotting.snapshot_every = 3;
  std::vector<std::remove_cvref_t<decltype(*base.resume)>> states;
  snapshotting.on_snapshot = [&](const auto& s) { states.push_back(s); };
  (void)run(problem, snapshotting);
  ASSERT_FALSE(states.empty());

  Params resumed_params = base;  // cache off again
  resumed_params.resume = &states.front();
  const auto resumed = run(problem, resumed_params);
  EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
  EXPECT_EQ(resumed.evaluations, full.evaluations);
}

TEST(DeterminismMatrix, Nsga2CheckpointCrossesCacheSettings) {
  const auto problem = problems::make_sch();
  moga::Nsga2Params base;
  base.population_size = 16;
  base.generations = 10;
  base.seed = 5;
  expect_cross_cache_resume(*problem, base,
                            [](const moga::Problem& p, const moga::Nsga2Params& params) {
                              return moga::run_nsga2(p, params);
                            });
}

TEST(DeterminismMatrix, SacgaCheckpointCrossesCacheSettings) {
  const auto problem = problems::make_sch();
  sacga::SacgaParams base;
  base.population_size = 16;
  base.partitions = 4;
  base.axis_objective = 0;
  base.axis_lo = 0.0;
  base.axis_hi = 4.0;
  base.phase1_max_generations = 6;
  base.span = 16;
  base.span_is_total_budget = true;
  base.seed = 3;
  expect_cross_cache_resume(*problem, base,
                            [](const moga::Problem& p, const sacga::SacgaParams& params) {
                              return sacga::run_sacga(p, params);
                            });
}

TEST(DeterminismMatrix, IslandCheckpointCrossesThreadCounts) {
  const auto problem = problems::make_sch();
  sacga::IslandParams base;
  base.islands = 2;
  base.island_population = 8;
  base.generations = 10;
  base.migration_interval = 4;
  base.migrants = 1;
  base.seed = 13;
  expect_cross_thread_resume(*problem, base,
                             [](const moga::Problem& p, const sacga::IslandParams& params) {
                               return sacga::run_island_ga(p, params);
                             });
}

}  // namespace
}  // namespace anadex::engine
