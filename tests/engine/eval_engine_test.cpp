// EvalEngine unit tests: the batch API's determinism contract — results
// are written by item index for every thread count, the lowest-index
// exception wins regardless of scheduling, and GuardedProblem's fault
// accounting composes identically under the pool.
#include "engine/eval_engine.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "problems/analytic.hpp"
#include "robust/guarded_problem.hpp"

namespace anadex::engine {
namespace {

/// Deterministic in-bounds genomes without touching any RNG stream.
std::vector<Genome> make_genomes(const moga::Problem& problem, std::size_t count) {
  const auto bounds = problem.bounds();
  std::vector<Genome> genomes(count);
  for (std::size_t i = 0; i < count; ++i) {
    genomes[i].resize(bounds.size());
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      const double t = static_cast<double>(i * bounds.size() + k + 1) /
                       static_cast<double>(count * bounds.size() + 1);
      genomes[i][k] = bounds[k].lower + t * (bounds[k].upper - bounds[k].lower);
    }
  }
  return genomes;
}

void expect_evaluations_eq(const std::vector<moga::Evaluation>& a,
                           const std::vector<moga::Evaluation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "item " << i;
    EXPECT_EQ(a[i].violations, b[i].violations) << "item " << i;
  }
}

TEST(EvalEngine, ResolvesThreadRequests) {
  EXPECT_GE(EvalEngine::resolve_threads(0), 1u);  // 0 = hardware, at least one
  EXPECT_EQ(EvalEngine::resolve_threads(1), 1u);
  EXPECT_EQ(EvalEngine::resolve_threads(6), 6u);
}

TEST(EvalEngine, BatchResultsAreBitIdenticalAcrossThreadCounts) {
  const auto problem = problems::make_kur();
  const auto genomes = make_genomes(*problem, 37);  // not a multiple of any pool size

  std::vector<moga::Evaluation> reference(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    reference[i] = problem->evaluated(genomes[i]);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const EvalEngine eval(*problem, threads);
    EXPECT_EQ(eval.threads(), threads);
    std::vector<moga::Evaluation> out(genomes.size());
    // Several batches through the same pool: later batches must be as
    // deterministic as the first.
    for (int round = 0; round < 3; ++round) {
      eval.evaluate_batch(genomes, out);
      expect_evaluations_eq(out, reference);
    }
  }
}

TEST(EvalEngine, EvaluateMembersFillsEvaluationsInPlace) {
  const auto problem = problems::make_fon();
  const auto genomes = make_genomes(*problem, 9);
  std::vector<moga::Individual> members(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) members[i].genes = genomes[i];

  const EvalEngine eval(*problem, 4);
  eval.evaluate_members(members);
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(members[i].eval.objectives, problem->evaluated(genomes[i]).objectives);
  }
}

TEST(EvalEngine, SingleItemPathMatchesProblemEvaluated) {
  const auto problem = problems::make_sch();
  const EvalEngine eval(*problem);
  const std::vector<double> genes{0.75};
  const auto via_engine = eval.evaluate(genes);
  const auto direct = problem->evaluated(genes);
  EXPECT_EQ(via_engine.objectives, direct.objectives);
  EXPECT_EQ(via_engine.violations, direct.violations);
}

TEST(EvalEngine, EmptyBatchIsANoOp) {
  const auto problem = problems::make_sch();
  const EvalEngine eval(*problem, 4);
  eval.evaluate_batch({}, {});
}

TEST(EvalEngine, RejectsMismatchedSpans) {
  const auto problem = problems::make_sch();
  const EvalEngine eval(*problem);
  const std::vector<Genome> genomes(3, Genome{0.5});
  std::vector<moga::Evaluation> out(2);
  EXPECT_THROW(eval.evaluate_batch(genomes, out), PreconditionError);
}

/// Throws for genes[0] > 0.5, with the gene value in the message so the
/// test can tell WHICH item's exception surfaced.
class ThrowAboveHalf final : public moga::Problem {
 public:
  std::string name() const override { return "throw-above-half"; }
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  std::vector<moga::VariableBound> bounds() const override { return {{0.0, 1.0}}; }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    if (genes[0] > 0.5) {
      throw std::runtime_error("boom at " + std::to_string(genes[0]));
    }
    out.objectives = {genes[0], 1.0 - genes[0]};
    out.violations.clear();
  }
};

TEST(EvalEngine, RethrowsTheLowestIndexExceptionForEveryThreadCount) {
  const ThrowAboveHalf problem;
  // Items 3 and 7 fault; item 3's exception must surface regardless of
  // which worker reaches which item first.
  std::vector<Genome> genomes(10, Genome{0.25});
  genomes[3] = {0.8};
  genomes[7] = {0.9};

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const EvalEngine eval(problem, threads);
    std::vector<moga::Evaluation> out(genomes.size());
    try {
      eval.evaluate_batch(genomes, out);
      FAIL() << "expected the batch to rethrow (threads = " << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("0.8"), std::string::npos)
          << "threads = " << threads << ": got '" << e.what() << "'";
    }
    // The batch is fully attempted before rethrowing: clean items landed.
    EXPECT_EQ(out[0].objectives, (std::vector<double>{0.25, 0.75}));
    EXPECT_EQ(out[9].objectives, (std::vector<double>{0.25, 0.75}));
  }
}

/// Faults (NaN objective) for genes[0] in [0.5, 0.75), throws above 0.75 —
/// mirrors the GuardedProblem test fixture, reused here to drive the
/// guard THROUGH the engine's worker pool.
class FlakyProblem final : public moga::Problem {
 public:
  std::string name() const override { return "flaky"; }
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  std::vector<moga::VariableBound> bounds() const override { return {{0.0, 1.0}}; }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    if (genes[0] >= 0.75) throw std::runtime_error("flaky boom");
    out.objectives = {genes[0], 1.0 - genes[0]};
    if (genes[0] >= 0.5) out.objectives[1] = std::nan("");
    out.violations.clear();
  }
};

TEST(EvalEngine, GuardedProblemFaultAccountingIsThreadCountInvariant) {
  // A batch with clean, non-finite and throwing genomes. The guard's
  // counters, penalties and the canonical sample failure must come out
  // identical whether the batch ran serially or on 8 workers.
  std::vector<Genome> genomes;
  for (int i = 0; i < 24; ++i) {
    genomes.push_back({static_cast<double>(i) / 24.0});
  }

  robust::GuardPolicy policy;
  policy.max_retries = 0;

  std::vector<std::vector<moga::Evaluation>> results;
  std::vector<robust::FaultReport> reports;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    robust::GuardedProblem guard(std::make_shared<FlakyProblem>(), policy);
    const EvalEngine eval(guard, threads);
    std::vector<moga::Evaluation> out(genomes.size());
    eval.evaluate_batch(genomes, out);
    results.push_back(std::move(out));
    reports.push_back(guard.report());
  }

  expect_evaluations_eq(results[0], results[1]);
  EXPECT_GT(reports[0].total_faults(), 0u);
  EXPECT_EQ(reports[0].exceptions, reports[1].exceptions);
  EXPECT_EQ(reports[0].non_finite, reports[1].non_finite);
  EXPECT_EQ(reports[0].penalized, reports[1].penalized);
  EXPECT_EQ(reports[0].failure_genes, reports[1].failure_genes);
  EXPECT_EQ(reports[0].failure_message, reports[1].failure_message);
}

}  // namespace
}  // namespace anadex::engine
