// EvalCache + EvalEngine memoization tests: LRU semantics, dedup
// accounting, bit-identity against the uncached engine and exception
// behavior when a batch with duplicates faults.
#include "engine/eval_cache.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "engine/eval_engine.hpp"
#include "problems/analytic.hpp"

namespace anadex::engine {
namespace {

moga::Evaluation eval_of(double a, double b) {
  moga::Evaluation e;
  e.objectives = {a, b};
  return e;
}

std::uint64_t key(std::span<const double> genes) { return hash_genes(genes, 0); }

TEST(EvalCache, MissThenHit) {
  EvalCache cache(4);
  const std::vector<double> genes{1.0, 2.0};
  moga::Evaluation out;
  EXPECT_FALSE(cache.lookup(genes, key(genes), out));
  cache.insert(genes, key(genes), eval_of(3.0, 4.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.lookup(genes, key(genes), out));
  EXPECT_EQ(out.objectives, (std::vector<double>{3.0, 4.0}));
}

TEST(EvalCache, EvictsLeastRecentlyUsed) {
  EvalCache cache(2);
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  const std::vector<double> c{3.0};
  cache.insert(a, key(a), eval_of(1.0, 0.0));
  cache.insert(b, key(b), eval_of(2.0, 0.0));
  // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
  moga::Evaluation out;
  ASSERT_TRUE(cache.lookup(a, key(a), out));
  cache.insert(c, key(c), eval_of(3.0, 0.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a, key(a), out));
  EXPECT_FALSE(cache.lookup(b, key(b), out));
  EXPECT_TRUE(cache.lookup(c, key(c), out));
}

TEST(EvalCache, ReinsertRefreshesRecencyWithoutGrowing) {
  EvalCache cache(2);
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  const std::vector<double> c{3.0};
  cache.insert(a, key(a), eval_of(1.0, 0.0));
  cache.insert(b, key(b), eval_of(2.0, 0.0));
  cache.insert(a, key(a), eval_of(1.0, 0.0));  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(c, key(c), eval_of(3.0, 0.0));  // must evict `b`, not `a`
  moga::Evaluation out;
  EXPECT_TRUE(cache.lookup(a, key(a), out));
  EXPECT_FALSE(cache.lookup(b, key(b), out));
}

TEST(EvalCache, HashCollisionsAreResolvedByGeneCompare) {
  EvalCache cache(4);
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  // Deliberately file both under the same (wrong) hash: the full gene
  // compare must still keep the entries apart.
  cache.insert(a, 42, eval_of(1.0, 0.0));
  cache.insert(b, 42, eval_of(2.0, 0.0));
  moga::Evaluation out;
  ASSERT_TRUE(cache.lookup(a, 42, out));
  EXPECT_EQ(out.objectives[0], 1.0);
  ASSERT_TRUE(cache.lookup(b, 42, out));
  EXPECT_EQ(out.objectives[0], 2.0);
}

TEST(EvalCache, RejectsZeroCapacity) {
  EXPECT_THROW(EvalCache cache(0), PreconditionError);
}

/// Counts how many times the underlying evaluate actually ran, so the
/// tests can distinguish dispatched work from cache-served requests.
class CountingProblem final : public moga::Problem {
 public:
  std::string name() const override { return "counting"; }
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  std::vector<moga::VariableBound> bounds() const override { return {{0.0, 1.0}}; }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    out.objectives = {genes[0], 1.0 - genes[0]};
    out.violations.clear();
  }
  mutable std::atomic<std::uint64_t> calls{0};
};

TEST(EvalEngineCache, DuplicatesWithinABatchAreDispatchedOnce) {
  const CountingProblem problem;
  const EvalEngine eval(problem, 1, nullptr, /*cache_capacity=*/8);
  EXPECT_EQ(eval.cache_capacity(), 8u);

  const std::vector<Genome> genomes{{0.1}, {0.2}, {0.1}, {0.3}, {0.2}, {0.1}};
  std::vector<moga::Evaluation> out(genomes.size());
  eval.evaluate_batch(genomes, out);

  EXPECT_EQ(problem.calls.load(), 3u);  // 0.1, 0.2, 0.3
  EXPECT_EQ(eval.stats().requested, 6u);
  EXPECT_EQ(eval.stats().evaluated, 3u);
  EXPECT_EQ(eval.stats().batch_hits, 3u);
  EXPECT_EQ(eval.stats().lru_hits, 0u);
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    EXPECT_EQ(out[i].objectives, (std::vector<double>{genomes[i][0], 1.0 - genomes[i][0]}))
        << "item " << i;
  }
}

TEST(EvalEngineCache, RepeatedBatchesHitTheLru) {
  const CountingProblem problem;
  const EvalEngine eval(problem, 1, nullptr, /*cache_capacity=*/8);

  const std::vector<Genome> genomes{{0.1}, {0.2}, {0.3}};
  std::vector<moga::Evaluation> out(genomes.size());
  eval.evaluate_batch(genomes, out);
  eval.evaluate_batch(genomes, out);

  EXPECT_EQ(problem.calls.load(), 3u);  // second batch fully served by the LRU
  EXPECT_EQ(eval.stats().requested, 6u);
  EXPECT_EQ(eval.stats().evaluated, 3u);
  EXPECT_EQ(eval.stats().lru_hits, 3u);
}

TEST(EvalEngineCache, TinyCapacityStillProducesCorrectResults) {
  const CountingProblem problem;
  const EvalEngine eval(problem, 1, nullptr, /*cache_capacity=*/1);

  // More distinct genomes than capacity: the cache thrashes but every
  // result must still be correct and intra-batch dedup still applies.
  const std::vector<Genome> genomes{{0.1}, {0.2}, {0.3}, {0.1}, {0.2}, {0.3}};
  std::vector<moga::Evaluation> out(genomes.size());
  eval.evaluate_batch(genomes, out);
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    EXPECT_EQ(out[i].objectives[0], genomes[i][0]) << "item " << i;
  }
  EXPECT_EQ(eval.stats().batch_hits, 3u);
}

TEST(EvalEngineCache, CachedBatchesAreBitIdenticalToUncachedOnes) {
  const auto problem = problems::make_kur();
  const auto bounds = problem->bounds();
  // A batch with heavy duplication, evaluated uncached, cached-serial and
  // cached-parallel; all three must agree byte-for-byte.
  std::vector<Genome> genomes;
  for (std::size_t i = 0; i < 40; ++i) {
    Genome g(bounds.size());
    const std::size_t v = i % 7;  // many repeats
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      const double t = static_cast<double>(v * bounds.size() + k + 1) / 64.0;
      g[k] = bounds[k].lower + t * (bounds[k].upper - bounds[k].lower);
    }
    genomes.push_back(std::move(g));
  }

  const EvalEngine plain(*problem, 1);
  std::vector<moga::Evaluation> reference(genomes.size());
  plain.evaluate_batch(genomes, reference);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const EvalEngine cached(*problem, threads, nullptr, 16);
    std::vector<moga::Evaluation> out(genomes.size());
    cached.evaluate_batch(genomes, out);
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      EXPECT_EQ(out[i].objectives, reference[i].objectives) << "item " << i;
      EXPECT_EQ(out[i].violations, reference[i].violations) << "item " << i;
    }
    EXPECT_EQ(cached.stats().evaluated, 7u);
    EXPECT_EQ(cached.stats().requested, genomes.size());
  }
}

/// Throws for genes[0] > 0.5 with the value in the message (mirrors the
/// EvalEngine test fixture).
class ThrowAboveHalf final : public moga::Problem {
 public:
  std::string name() const override { return "throw-above-half"; }
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 0; }
  std::vector<moga::VariableBound> bounds() const override { return {{0.0, 1.0}}; }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    if (genes[0] > 0.5) {
      throw std::runtime_error("boom at " + std::to_string(genes[0]));
    }
    out.objectives = {genes[0], 1.0 - genes[0]};
    out.violations.clear();
  }
};

TEST(EvalEngineCache, LowestIndexExceptionSurvivesDeduplication) {
  const ThrowAboveHalf problem;
  // Items 2 and 5 are duplicates of the faulting genome; item 4 is a later
  // distinct fault. The dedup representative of {0.8} sits at index 2, the
  // lowest faulting index, so its exception must surface — and the clean
  // duplicates must still receive their fanned-out results.
  std::vector<Genome> genomes{{0.25}, {0.25}, {0.8}, {0.25}, {0.9}, {0.8}};

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const EvalEngine eval(problem, threads, nullptr, 8);
    std::vector<moga::Evaluation> out(genomes.size());
    try {
      eval.evaluate_batch(genomes, out);
      FAIL() << "expected the batch to rethrow (threads = " << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("0.8"), std::string::npos)
          << "threads = " << threads << ": got '" << e.what() << "'";
    }
    EXPECT_EQ(out[0].objectives, (std::vector<double>{0.25, 0.75}));
    EXPECT_EQ(out[3].objectives, (std::vector<double>{0.25, 0.75}));
  }
}

TEST(EvalEngineCache, FaultedBatchesAreNotRetained) {
  // After a faulting batch nothing may enter the LRU: a later batch
  // resubmitting the clean genome must dispatch it again (batch results
  // are only published to the cache when the whole batch succeeded).
  const ThrowAboveHalf problem;
  const EvalEngine eval(problem, 1, nullptr, 8);

  std::vector<Genome> faulting{{0.25}, {0.8}};
  std::vector<moga::Evaluation> out(faulting.size());
  EXPECT_THROW(eval.evaluate_batch(faulting, out), std::runtime_error);

  std::vector<Genome> clean{{0.25}};
  out.resize(1);
  eval.evaluate_batch(clean, out);
  EXPECT_EQ(eval.stats().lru_hits, 0u);
  EXPECT_EQ(out[0].objectives, (std::vector<double>{0.25, 0.75}));
}

TEST(EvalCache, StaysCoherentThroughFillAndEviction) {
  // List/index coherence must hold at every point of the lifecycle: while
  // filling, at capacity, across evictions and across recency refreshes.
  EvalCache cache(3);
  EXPECT_TRUE(cache.coherent());  // empty cache is trivially coherent
  for (int i = 0; i < 8; ++i) {
    const std::vector<double> genes{static_cast<double>(i), 0.5};
    cache.insert(genes, key(genes), eval_of(i, -i));
    EXPECT_TRUE(cache.coherent()) << "after insert " << i;
    EXPECT_LE(cache.size(), cache.capacity());
  }
  // Refresh recency of the newest survivor, then keep evicting.
  const std::vector<double> survivor{7.0, 0.5};
  moga::Evaluation out;
  EXPECT_TRUE(cache.lookup(survivor, key(survivor), out));
  EXPECT_TRUE(cache.coherent());
  const std::vector<double> fresh{99.0, 0.5};
  cache.insert(fresh, key(fresh), eval_of(1, 2));
  EXPECT_TRUE(cache.coherent());
  // Re-inserting an existing key must refresh, not duplicate.
  cache.insert(survivor, key(survivor), eval_of(7, -7));
  EXPECT_TRUE(cache.coherent());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(EvalCache, CoherentSurvivesCollidingHashes) {
  // Deliberately file two distinct genomes under one hash: coherent() must
  // accept the shared bucket (distinct keys) and the cache must still tell
  // the genomes apart on lookup.
  EvalCache cache(4);
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  cache.insert(a, 42, eval_of(1, 1));
  cache.insert(b, 42, eval_of(2, 2));
  EXPECT_TRUE(cache.coherent());
  moga::Evaluation out;
  ASSERT_TRUE(cache.lookup(a, 42, out));
  EXPECT_EQ(out.objectives, (std::vector<double>{1.0, 1.0}));
  ASSERT_TRUE(cache.lookup(b, 42, out));
  EXPECT_EQ(out.objectives, (std::vector<double>{2.0, 2.0}));
}

TEST(EvalEngineCache, StatsStayZeroedWithTheCacheOff) {
  const CountingProblem problem;
  const EvalEngine eval(problem, 1);  // cache_capacity = 0
  EXPECT_EQ(eval.cache_capacity(), 0u);
  const std::vector<Genome> genomes{{0.1}, {0.1}, {0.1}};
  std::vector<moga::Evaluation> out(genomes.size());
  eval.evaluate_batch(genomes, out);
  EXPECT_EQ(problem.calls.load(), 3u);  // no dedup without the cache
  EXPECT_EQ(eval.stats().requested, 3u);
  EXPECT_EQ(eval.stats().evaluated, 3u);
  EXPECT_EQ(eval.stats().cache_hits(), 0u);
}

}  // namespace
}  // namespace anadex::engine
