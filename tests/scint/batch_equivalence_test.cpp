// Golden-equivalence suite for the SoA batch evaluation path
// (docs/performance.md): IntegratorProblem::evaluate_lanes must reproduce
// scalar evaluate() bit for bit — same doubles, not merely close ones —
// for every spec in the paper's suite, every compiled lane width, ragged
// remainder groups, and hostile (NaN / out-of-range) genomes. The engine's
// cross-mode checkpoint byte-identity rests on this property.
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "moga/individual.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::problems {
namespace {

std::vector<std::vector<double>> random_genomes(const moga::Problem& problem,
                                                std::size_t count, std::uint64_t seed) {
  const auto bounds = problem.bounds();
  Rng rng(seed);
  std::vector<std::vector<double>> genomes(count);
  for (auto& genes : genomes) {
    genes.resize(bounds.size());
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      genes[k] = rng.uniform(bounds[k].lower, bounds[k].upper);
    }
  }
  return genomes;
}

// Exact comparison by bit pattern, so -0.0 vs 0.0 or differing NaN
// payloads count as mismatches — the checkpoint files the engine writes
// are byte-level artifacts of these doubles.
void expect_bitwise_equal(const moga::Evaluation& lanes, const moga::Evaluation& scalar,
                          const std::string& label) {
  ASSERT_EQ(lanes.objectives.size(), scalar.objectives.size()) << label;
  ASSERT_EQ(lanes.violations.size(), scalar.violations.size()) << label;
  for (std::size_t i = 0; i < scalar.objectives.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes.objectives[i]),
              std::bit_cast<std::uint64_t>(scalar.objectives[i]))
        << label << " objective " << i << ": " << lanes.objectives[i] << " vs "
        << scalar.objectives[i];
  }
  for (std::size_t i = 0; i < scalar.violations.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(lanes.violations[i]),
              std::bit_cast<std::uint64_t>(scalar.violations[i]))
        << label << " violation " << i << ": " << lanes.violations[i] << " vs "
        << scalar.violations[i];
  }
}

/// Runs `genomes` through evaluate_lanes in groups of `group` and through
/// scalar evaluate(), then asserts bitwise equality per genome.
void check_equivalence(const IntegratorProblem& problem,
                       const std::vector<std::vector<double>>& genomes,
                       std::size_t group, const std::string& label) {
  std::vector<moga::Evaluation> scalar(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    problem.evaluate(genomes[i], scalar[i]);
  }

  std::vector<moga::Evaluation> lanes(genomes.size());
  for (std::size_t start = 0; start < genomes.size(); start += group) {
    const std::size_t n = std::min(group, genomes.size() - start);
    std::vector<std::span<const double>> genes(n);
    std::vector<moga::Evaluation*> outs(n);
    for (std::size_t k = 0; k < n; ++k) {
      genes[k] = genomes[start + k];
      outs[k] = &lanes[start + k];
    }
    problem.evaluate_lanes(genes, outs);
  }

  for (std::size_t i = 0; i < genomes.size(); ++i) {
    expect_bitwise_equal(lanes[i], scalar[i],
                         label + " genome " + std::to_string(i));
  }
}

TEST(BatchEquivalence, AllTwentySpecsBitIdentical) {
  const auto suite = problems::spec_suite();
  ASSERT_EQ(suite.size(), 20u);
  for (std::size_t s = 0; s < suite.size(); ++s) {
    const IntegratorProblem problem(suite[s]);
    const auto genomes = random_genomes(problem, 24, 1000 + s);
    check_equivalence(problem, genomes, problem.preferred_lane_width(),
                      "spec " + std::to_string(s + 1));
  }
}

TEST(BatchEquivalence, EveryCompiledLaneWidth) {
  // Group sizes 4 / 8 / 16 route through the W=4 / W=8 / W=16 kernel
  // instantiations respectively (integrator_problem.cpp's dispatch).
  const IntegratorProblem problem(problems::chosen_spec());
  const auto genomes = random_genomes(problem, 48, 7);
  for (const std::size_t width : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    check_equivalence(problem, genomes, width,
                      "width " + std::to_string(width));
  }
}

TEST(BatchEquivalence, RemainderLanesArePadded) {
  // Ragged group sizes force every padding path: n < 4 pads the W=4
  // kernel, 5..7 pad W=8, 9..15 pad W=16, and 17+ chunks then pads.
  const IntegratorProblem problem(problems::chosen_spec());
  const auto genomes = random_genomes(problem, 34, 11);
  for (const std::size_t group : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{5}, std::size_t{7}, std::size_t{9},
                                  std::size_t{13}, std::size_t{15}, std::size_t{17},
                                  std::size_t{34}}) {
    check_equivalence(problem, genomes, group,
                      "ragged group " + std::to_string(group));
  }
}

TEST(BatchEquivalence, HostileGenomesMatchScalarPath) {
  // NaN and out-of-range genes must behave in the lane kernels exactly as
  // they behave in the scalar path: a genome that trips a device-model
  // precondition (e.g. NaN or zero geometry fails `w > 0`) must throw from
  // both paths, and a genome the scalar path can evaluate must come back
  // bit-identical. (In production the fault guard catches the throws and
  // re-runs faulty lanes scalar; this asserts the underlying parity.)
  const IntegratorProblem problem(problems::chosen_spec());
  auto genomes = random_genomes(problem, 16, 23);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  genomes[0][kW1] = nan;
  genomes[3][kIbias] = nan;
  genomes[5][kCc] = 0.0;           // degenerate Miller cap
  genomes[7][kIbias] = -1e-6;      // infeasible negative bias
  genomes[9][kW1] = 1e3;           // absurd out-of-bounds width
  genomes[11][kL1] = 0.0;          // zero-length device

  // Per genome: scalar outcome (value or throw), then single-lane outcome.
  std::vector<std::vector<double>> evaluable;
  std::size_t throwing = 0;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const std::string label = "hostile genome " + std::to_string(i);
    moga::Evaluation scalar;
    bool scalar_threw = false;
    try {
      problem.evaluate(genomes[i], scalar);
    } catch (const std::exception&) {
      scalar_threw = true;
    }

    moga::Evaluation lane;
    bool lane_threw = false;
    const std::span<const double> genes[] = {genomes[i]};
    moga::Evaluation* const outs[] = {&lane};
    try {
      problem.evaluate_lanes(genes, outs);
    } catch (const std::exception&) {
      lane_threw = true;
    }

    EXPECT_EQ(lane_threw, scalar_threw) << label;
    if (scalar_threw) {
      ++throwing;
    } else if (!lane_threw) {
      expect_bitwise_equal(lane, scalar, label);
      evaluable.push_back(genomes[i]);
    }
  }
  EXPECT_GT(throwing, 0u);  // the suite must exercise the throwing path

  // The evaluable remainder — still including degenerate values like a
  // zero Miller cap and a negative bias — must survive full-width groups
  // without one lane contaminating another.
  ASSERT_GE(evaluable.size(), 8u);
  check_equivalence(problem, evaluable, 8, "hostile evaluable");
}

}  // namespace
}  // namespace anadex::problems
