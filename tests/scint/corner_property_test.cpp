// Corner-ordering property tests across randomized feasible-ish designs:
// the process corners must shift circuit performance in physically
// consistent directions regardless of the operating point.
#include <cmath>

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/rng.hpp"
#include "scint/integrator.hpp"

namespace anadex::scint {
namespace {

const device::Process kTT = device::Process::typical();
const device::Process kFF = kTT.at_corner(device::Corner::FF);
const device::Process kSS = kTT.at_corner(device::Corner::SS);

/// Random perturbations around the reference design keep devices biased in
/// sane regions while exercising varied operating points.
IntegratorDesign perturbed_reference(Rng& rng) {
  IntegratorDesign d = testing_support::reference_design();
  auto jitter = [&rng](double value, double rel) {
    return value * rng.uniform(1.0 - rel, 1.0 + rel);
  };
  d.opamp.m1.w = jitter(d.opamp.m1.w, 0.3);
  d.opamp.m3.w = jitter(d.opamp.m3.w, 0.3);
  d.opamp.m5.w = jitter(d.opamp.m5.w, 0.3);
  d.opamp.m6.w = jitter(d.opamp.m6.w, 0.3);
  d.opamp.m7.w = jitter(d.opamp.m7.w, 0.3);
  d.opamp.ibias = jitter(d.opamp.ibias, 0.3);
  d.opamp.cc = jitter(d.opamp.cc, 0.3);
  d.cs = jitter(d.cs, 0.3);
  d.cload = rng.uniform(0.1e-12, 5e-12);
  return d;
}

class CornerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CornerProperty, SlowCornerSettlesSlowerOnAggregate) {
  // gm drops at SS so loop bandwidth degrades; however near critical
  // damping, a small gm reduction can genuinely settle FASTER (the damping
  // dip — see the integrator settling model notes), so the law is
  // aggregate: on average SS is slower, and never faster by more than a
  // few percent.
  Rng rng(GetParam());
  const IntegratorContext ctx;
  double ss_total = 0.0;
  double ff_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const IntegratorDesign d = perturbed_reference(rng);
    const auto ff = evaluate(kFF, d, ctx);
    const auto ss = evaluate(kSS, d, ctx);
    ss_total += ss.settling_time;
    ff_total += ff.settling_time;
    EXPECT_GE(ss.settling_time, ff.settling_time * 0.90) << "trial " << trial;
  }
  EXPECT_GT(ss_total, ff_total);
}

TEST_P(CornerProperty, GateLineOrdersAcrossCorners) {
  Rng rng(GetParam() + 100);
  const IntegratorContext ctx;
  for (int trial = 0; trial < 20; ++trial) {
    const IntegratorDesign d = perturbed_reference(rng);
    const auto ff = evaluate(kFF, d, ctx);
    const auto tt = evaluate(kTT, d, ctx);
    const auto ss = evaluate(kSS, d, ctx);
    EXPECT_LT(ff.opamp.vgs_ref, tt.opamp.vgs_ref);
    EXPECT_GT(ss.opamp.vgs_ref, tt.opamp.vgs_ref);
  }
}

TEST_P(CornerProperty, AllCornersProduceFiniteResults) {
  Rng rng(GetParam() + 200);
  const IntegratorContext ctx;
  for (int trial = 0; trial < 10; ++trial) {
    const IntegratorDesign d = perturbed_reference(rng);
    for (auto corner : device::kAllCorners) {
      const auto perf = evaluate(kTT.at_corner(corner), d, ctx);
      ASSERT_TRUE(std::isfinite(perf.power));
      ASSERT_TRUE(std::isfinite(perf.settling_time));
      ASSERT_TRUE(std::isfinite(perf.settling_error));
      ASSERT_TRUE(std::isfinite(perf.output_range));
    }
  }
}

TEST_P(CornerProperty, CapDensityShiftMovesAreaOppositeToCapValue) {
  Rng rng(GetParam() + 300);
  const IntegratorContext ctx;
  const IntegratorDesign d = perturbed_reference(rng);
  const auto ff = evaluate(kFF, d, ctx);  // FF has higher cap density
  const auto ss = evaluate(kSS, d, ctx);
  // Same drawn capacitance needs less area when the density is higher...
  // density enters area = C / density, so FF (lower cap_density per our
  // corner model) yields LARGER area than SS.
  EXPECT_GT(ff.area, ss.area);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CornerProperty, ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace anadex::scint
