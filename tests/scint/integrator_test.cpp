#include "scint/integrator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/rng.hpp"
#include "scint/spec.hpp"

namespace anadex::scint {
namespace {

const device::Process kProc = device::Process::typical();

IntegratorDesign ref() { return testing_support::reference_design(); }

TEST(Integrator, SlavedFeedbackCapFollowsGainCoefficient) {
  IntegratorDesign d;
  d.cs = 3e-12;
  EXPECT_DOUBLE_EQ(d.cf(), 3e-12 / kIntegratorGain);
}

TEST(Integrator, ReferenceDesignMeetsChosenSpecAtTypical) {
  Spec spec;  // defaults are the paper's chosen spec
  const auto perf = evaluate(kProc, ref(), IntegratorContext{});
  EXPECT_TRUE(spec.satisfied_by(perf));
}

TEST(Integrator, FeedbackFactorBetweenZeroAndOne) {
  const auto perf = evaluate(kProc, ref(), IntegratorContext{});
  EXPECT_GT(perf.feedback_factor, 0.0);
  EXPECT_LT(perf.feedback_factor, 1.0);
}

TEST(Integrator, LoadTotalExceedsExternalLoad) {
  const auto perf = evaluate(kProc, ref(), IntegratorContext{});
  EXPECT_GT(perf.load_total, ref().cload);  // junctions + feedback network add
}

TEST(Integrator, HeavyLoadSettlesSlowerThanLightLoad) {
  // Settling time is not strictly monotone in load: pushing a strongly
  // over-damped amplifier toward critical damping can genuinely settle
  // faster. The endpoints must still order, and the under-damped tail must
  // grow monotonically.
  IntegratorDesign d = ref();
  d.cload = 0.1e-12;
  const auto light = evaluate(kProc, d, IntegratorContext{});
  d.cload = 5e-12;
  const auto heavy = evaluate(kProc, d, IntegratorContext{});
  EXPECT_GT(heavy.settling_time, light.settling_time);

  double prev = 0.0;
  for (double cl = 2e-12; cl <= 5e-12; cl += 0.5e-12) {
    d.cload = cl;
    const auto perf = evaluate(kProc, d, IntegratorContext{});
    EXPECT_GT(perf.settling_time, prev);
    prev = perf.settling_time;
  }
}

TEST(Integrator, SettlingErrorGrowsWithLoad) {
  IntegratorDesign d = ref();
  d.cload = 0.1e-12;
  const auto light = evaluate(kProc, d, IntegratorContext{});
  d.cload = 5e-12;
  const auto heavy = evaluate(kProc, d, IntegratorContext{});
  EXPECT_GE(heavy.settling_error, light.settling_error);
}

TEST(Integrator, DynamicRangeImprovesWithSamplingCap) {
  IntegratorDesign d = ref();
  d.cs = 0.8e-12;
  const auto small_cs = evaluate(kProc, d, IntegratorContext{});
  d.cs = 4e-12;
  const auto big_cs = evaluate(kProc, d, IntegratorContext{});
  EXPECT_GT(big_cs.dynamic_range_db, small_cs.dynamic_range_db);
}

TEST(Integrator, DynamicRangeImprovesWithOversampling) {
  const IntegratorDesign d = ref();
  IntegratorContext ctx;
  ctx.oversampling = 32.0;
  const auto low_osr = evaluate(kProc, d, ctx);
  ctx.oversampling = 512.0;
  const auto high_osr = evaluate(kProc, d, ctx);
  EXPECT_GT(high_osr.dynamic_range_db, low_osr.dynamic_range_db);
  // 16x OSR = 12 dB for white in-band noise.
  EXPECT_NEAR(high_osr.dynamic_range_db - low_osr.dynamic_range_db, 12.0, 0.5);
}

TEST(Integrator, SettlingErrorContainsStaticGainError) {
  const auto perf = evaluate(kProc, ref(), IntegratorContext{});
  const double static_error =
      1.0 / (perf.opamp.a0 * perf.feedback_factor);
  EXPECT_GE(perf.settling_error, static_error);
}

TEST(Integrator, ShorterHalfPeriodRaisesSettlingError) {
  const IntegratorDesign d = ref();
  IntegratorContext ctx;
  ctx.half_period = 250e-9;
  const auto slow_clock = evaluate(kProc, d, ctx);
  ctx.half_period = 60e-9;
  const auto fast_clock = evaluate(kProc, d, ctx);
  EXPECT_GT(fast_clock.settling_error, slow_clock.settling_error);
}

TEST(Integrator, AreaIncludesCapacitors) {
  IntegratorDesign d = ref();
  const auto base = evaluate(kProc, d, IntegratorContext{});
  d.cs *= 4.0;  // quadruple sampling cap (and the slaved Cf)
  const auto big = evaluate(kProc, d, IntegratorContext{});
  EXPECT_GT(big.area, base.area);
}

TEST(Integrator, PowerIndependentOfLoad) {
  // Static class-A power: the load changes dynamics, not bias power.
  IntegratorDesign d = ref();
  d.cload = 0.1e-12;
  const auto light = evaluate(kProc, d, IntegratorContext{});
  d.cload = 5e-12;
  const auto heavy = evaluate(kProc, d, IntegratorContext{});
  EXPECT_DOUBLE_EQ(light.power, heavy.power);
}

TEST(Integrator, PhaseMarginDropsWithLoad) {
  IntegratorDesign d = ref();
  d.cload = 0.2e-12;
  const auto light = evaluate(kProc, d, IntegratorContext{});
  d.cload = 5e-12;
  const auto heavy = evaluate(kProc, d, IntegratorContext{});
  EXPECT_LT(heavy.phase_margin_deg, light.phase_margin_deg);
}

TEST(Integrator, SlowCornerSettlesSlower) {
  const IntegratorDesign d = ref();
  const auto tt = evaluate(kProc, d, IntegratorContext{});
  const auto ss = evaluate(kProc.at_corner(device::Corner::SS), d, IntegratorContext{});
  EXPECT_GT(ss.settling_time, tt.settling_time);
}

TEST(Integrator, EvaluationIsDeterministic) {
  const IntegratorDesign d = ref();
  const auto a = evaluate(kProc, d, IntegratorContext{});
  const auto b = evaluate(kProc, d, IntegratorContext{});
  EXPECT_EQ(a.settling_time, b.settling_time);
  EXPECT_EQ(a.dynamic_range_db, b.dynamic_range_db);
  EXPECT_EQ(a.power, b.power);
}

TEST(Spec, DefaultIsThePaperChosenCase) {
  const Spec spec;
  EXPECT_EQ(spec.dr_min_db, 96.0);
  EXPECT_EQ(spec.or_min, 1.4);
  EXPECT_EQ(spec.st_max, 0.24e-6);
  EXPECT_EQ(spec.se_max, 7e-4);
  EXPECT_EQ(spec.robustness_min, 0.85);
}

TEST(Spec, ViolatingAnyLimitFailsSatisfiedBy) {
  const auto perf = evaluate(kProc, ref(), IntegratorContext{});
  Spec spec;
  ASSERT_TRUE(spec.satisfied_by(perf));
  spec.dr_min_db = perf.dynamic_range_db + 1.0;
  EXPECT_FALSE(spec.satisfied_by(perf));
  spec = Spec{};
  spec.st_max = perf.settling_time * 0.5;
  EXPECT_FALSE(spec.satisfied_by(perf));
  spec = Spec{};
  spec.se_max = perf.settling_error * 0.5;
  EXPECT_FALSE(spec.satisfied_by(perf));
  spec = Spec{};
  spec.or_min = perf.output_range + 0.1;
  EXPECT_FALSE(spec.satisfied_by(perf));
  spec = Spec{};
  spec.area_max = perf.area * 0.5;
  EXPECT_FALSE(spec.satisfied_by(perf));
  spec = Spec{};
  spec.vov_min = perf.vov_worst + 0.05;
  EXPECT_FALSE(spec.satisfied_by(perf));
}

/// Totality sweep: every random design inside the box must evaluate to
/// finite performance numbers.
class EvaluateTotality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvaluateTotality, RandomDesignsAreFinite) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    IntegratorDesign d;
    d.opamp.m1 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.opamp.m3 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.opamp.m5 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 2e-6)};
    d.opamp.m6 = {rng.uniform(1e-6, 400e-6), rng.uniform(0.18e-6, 1e-6)};
    d.opamp.m7 = {rng.uniform(1e-6, 200e-6), rng.uniform(0.18e-6, 1e-6)};
    d.opamp.ibias = rng.uniform(1e-6, 50e-6);
    d.opamp.cc = rng.uniform(0.1e-12, 5e-12);
    d.cs = rng.uniform(0.5e-12, 8e-12);
    d.coc = rng.uniform(0.1e-12, 2e-12);
    d.cload = rng.uniform(0.01e-12, 5e-12);
    const auto perf = evaluate(kProc, d, IntegratorContext{});
    ASSERT_TRUE(std::isfinite(perf.settling_time));
    ASSERT_TRUE(std::isfinite(perf.settling_error));
    ASSERT_TRUE(std::isfinite(perf.dynamic_range_db) ||
                perf.dynamic_range_db == -std::numeric_limits<double>::infinity());
    ASSERT_TRUE(std::isfinite(perf.power));
    ASSERT_TRUE(std::isfinite(perf.area));
    ASSERT_TRUE(std::isfinite(perf.phase_margin_deg));
    ASSERT_GE(perf.settling_time, 0.0);
    ASSERT_GE(perf.power, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluateTotality, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace anadex::scint
