#include "sysdes/sigma_delta.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::sysdes {
namespace {

TEST(SigmaDelta, IdealSqnrKnownValue) {
  // 2nd order, OSR 64, 1-bit: 6.02 + 1.76 + 50*log10(64) - 10*log10(pi^4/5)
  ModulatorSpec spec;
  spec.order = 2;
  spec.osr = 64.0;
  spec.quantizer_bits = 1;
  const double expected = 6.02 + 1.76 + 50.0 * std::log10(64.0) -
                          10.0 * std::log10(std::pow(3.14159265358979, 4.0) / 5.0);
  EXPECT_NEAR(ideal_sqnr_db(spec), expected, 0.01);
}

TEST(SigmaDelta, SqnrGrowsWithOrderAndOsr) {
  ModulatorSpec spec;
  const double base = ideal_sqnr_db(spec);
  ModulatorSpec higher_order = spec;
  higher_order.order = 5;
  EXPECT_GT(ideal_sqnr_db(higher_order), base);
  ModulatorSpec higher_osr = spec;
  higher_osr.osr = 256.0;
  EXPECT_GT(ideal_sqnr_db(higher_osr), base);
}

TEST(SigmaDelta, SqnrValidation) {
  ModulatorSpec spec;
  spec.order = 0;
  EXPECT_THROW(ideal_sqnr_db(spec), PreconditionError);
  spec = ModulatorSpec{};
  spec.osr = 1.0;
  EXPECT_THROW(ideal_sqnr_db(spec), PreconditionError);
}

TEST(SigmaDelta, StageRequirementsRelaxDownTheChain) {
  ModulatorSpec spec;  // 4th order, target 90 dB
  const auto reqs = stage_dr_requirements(spec);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_NEAR(reqs[0], 93.0, 1e-9);  // target + 3 dB margin
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_LT(reqs[i], reqs[i - 1]);
  }
}

TEST(SigmaDelta, StageRequirementsFlooredAt40db) {
  ModulatorSpec spec;
  spec.order = 10;
  const auto reqs = stage_dr_requirements(spec);
  EXPECT_EQ(reqs.back(), 40.0);
}

TEST(SigmaDelta, DefaultStageLoadsShrinkesThenQuantizer) {
  ModulatorSpec spec;
  const auto loads = default_stage_loads(spec);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_GT(loads[0], loads[1]);
  EXPECT_GT(loads[1], loads[2]);
  EXPECT_GT(loads[3], loads[2]);  // last stage drives the quantizer
  for (double l : loads) {
    EXPECT_GT(l, 0.0);
    EXPECT_LE(l, 5e-12);  // within the explored design surface
  }
}

TEST(Budget, DiverseFrontCoversAllStages) {
  std::vector<FrontPoint> front;
  for (int i = 1; i <= 10; ++i) {
    front.push_back({0.1e-3 * i, 0.5e-12 * i});  // power rises with load
  }
  const std::vector<double> loads{4e-12, 2e-12, 1e-12, 3e-12};
  const auto result = budget_from_front(front, loads);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.stages.size(), 4u);
  // Power-optimal picks: smallest covering point for each load.
  EXPECT_NEAR(result.stages[0].pick->cload, 4e-12, 1e-15);
  EXPECT_NEAR(result.stages[2].pick->cload, 1e-12, 1e-15);
  EXPECT_NEAR(result.total_power, (0.8 + 0.4 + 0.2 + 0.6) * 1e-3, 1e-9);
}

TEST(Budget, ClusteredFrontFailsLowCoverageStage) {
  // The NSGA-II pathology: all designs at 4.5-5 pF with high power.
  std::vector<FrontPoint> clustered{{0.9e-3, 4.6e-12}, {0.95e-3, 4.9e-12}};
  const std::vector<double> loads{4e-12, 2e-12, 1e-12, 3e-12};
  const auto result = budget_from_front(clustered, loads);
  EXPECT_TRUE(result.feasible);  // oversized designs still cover...
  // ...but the total power is far above the diverse front's optimum.
  EXPECT_GT(result.total_power, 3.5e-3);
}

TEST(Budget, UncoverableLoadReportsInfeasible) {
  std::vector<FrontPoint> front{{0.2e-3, 1e-12}};
  const std::vector<double> loads{2e-12};
  const auto result = budget_from_front(front, loads);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.stages[0].pick.has_value());
  EXPECT_EQ(result.total_power, 0.0);
}

TEST(Budget, EmptyFrontAllInfeasible) {
  const auto result = budget_from_front({}, {1e-12, 2e-12});
  EXPECT_FALSE(result.feasible);
  for (const auto& stage : result.stages) {
    EXPECT_FALSE(stage.pick.has_value());
  }
}

TEST(Budget, PicksCheapestCoveringDesign) {
  std::vector<FrontPoint> front{{0.5e-3, 3e-12}, {0.3e-3, 2.5e-12}, {0.9e-3, 5e-12}};
  const auto result = budget_from_front(front, {2e-12});
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.stages[0].pick->power, 0.3e-3, 1e-12);
}

}  // namespace
}  // namespace anadex::sysdes
