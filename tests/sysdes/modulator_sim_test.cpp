#include "sysdes/modulator_sim.hpp"

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/check.hpp"

namespace anadex::sysdes {
namespace {

SimulationConfig default_config() {
  SimulationConfig cfg;
  cfg.samples = 1 << 13;
  cfg.osr = 128.0;
  return cfg;
}

TEST(ModulatorSim, ValidatesConfig) {
  const auto stages = ideal_stages(2);
  SimulationConfig cfg = default_config();
  cfg.samples = 1000;  // not a power of two
  EXPECT_THROW(simulate_modulator(stages, cfg), PreconditionError);
  cfg = default_config();
  cfg.osr = 1.0;
  EXPECT_THROW(simulate_modulator(stages, cfg), PreconditionError);
  EXPECT_THROW(simulate_modulator({}, default_config()), PreconditionError);
  EXPECT_THROW(ideal_stages(0), PreconditionError);
  EXPECT_THROW(ideal_stages(5), PreconditionError);
}

TEST(ModulatorSim, BitstreamIsBinaryAndFullLength) {
  const auto result = simulate_modulator(ideal_stages(2), default_config());
  EXPECT_EQ(result.bitstream.size(), default_config().samples);
  for (double v : result.bitstream) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
  }
}

TEST(ModulatorSim, AllSupportedOrdersAreStable) {
  for (int order = 1; order <= 4; ++order) {
    const auto result = simulate_modulator(ideal_stages(order), default_config());
    EXPECT_TRUE(result.stable) << "order " << order;
  }
}

TEST(ModulatorSim, SndrGrowsWithOrder) {
  double prev = 0.0;
  for (int order = 1; order <= 4; ++order) {
    const auto result = simulate_modulator(ideal_stages(order), default_config());
    EXPECT_GT(result.sndr_db, prev) << "order " << order;
    prev = result.sndr_db;
  }
}

TEST(ModulatorSim, SndrGrowsWithOsr) {
  SimulationConfig low = default_config();
  low.osr = 32.0;
  SimulationConfig high = default_config();
  high.osr = 128.0;
  const auto stages = ideal_stages(2);
  const double low_sndr = simulate_modulator(stages, low).sndr_db;
  const double high_sndr = simulate_modulator(stages, high).sndr_db;
  // Order-2: ~15 dB per octave, 2 octaves here; windowing eats a little.
  EXPECT_GT(high_sndr - low_sndr, 20.0);
}

TEST(ModulatorSim, SecondOrderHitsPlausibleSndr) {
  const auto result = simulate_modulator(ideal_stages(2), default_config());
  EXPECT_GT(result.sndr_db, 70.0);
  EXPECT_LT(result.sndr_db, ideal_sqnr_db({2, 128.0, 1, 90.0}) + 3.0);
}

TEST(ModulatorSim, LeakyIntegratorsDegradeSndr) {
  auto stages = ideal_stages(2);
  const double clean = simulate_modulator(stages, default_config()).sndr_db;
  for (auto& s : stages) s.leakage = 1.0 - 1.0 / 50.0;  // very low DC gain
  const double leaky = simulate_modulator(stages, default_config()).sndr_db;
  EXPECT_LT(leaky, clean);
}

TEST(ModulatorSim, SettlingErrorDegradesOrShiftsSndr) {
  auto stages = ideal_stages(2);
  const double clean = simulate_modulator(stages, default_config()).sndr_db;
  for (auto& s : stages) s.settling_gain = 0.9;  // 10% incomplete transfer
  const double slow = simulate_modulator(stages, default_config()).sndr_db;
  // A uniform gain error mostly rescales coefficients; it must not IMPROVE
  // the modulator beyond noise, and typically costs a few dB.
  EXPECT_LT(slow, clean + 3.0);
}

TEST(ModulatorSim, DeterministicPerSeed) {
  const auto a = simulate_modulator(ideal_stages(3), default_config());
  const auto b = simulate_modulator(ideal_stages(3), default_config());
  EXPECT_EQ(a.sndr_db, b.sndr_db);
  EXPECT_EQ(a.bitstream, b.bitstream);
}

TEST(ModulatorSim, OverloadedInputDestabilizesHighOrderLoop) {
  SimulationConfig cfg = default_config();
  cfg.input_amplitude = 1.3;  // beyond full scale
  const auto result = simulate_modulator(ideal_stages(4), cfg);
  EXPECT_FALSE(result.stable);
}

TEST(StageModel, FromPerformanceMapsGainAndSettling) {
  const auto proc = device::Process::typical();
  const auto perf =
      scint::evaluate(proc, testing_support::reference_design(), scint::IntegratorContext{});
  const auto model = StageModel::from_performance(perf, 0.5);
  EXPECT_EQ(model.coefficient, 0.5);
  EXPECT_GT(model.leakage, 0.99);  // high loop gain -> nearly ideal pole
  EXPECT_LT(model.leakage, 1.0);
  EXPECT_GT(model.settling_gain, 0.99);
  EXPECT_LE(model.settling_gain, 1.0);
}

TEST(StageModel, CircuitBackedModulatorDeliversTargetDr) {
  // The headline chain: a spec-compliant integrator design, mapped to stage
  // non-idealities, must still deliver a healthy modulator SNDR.
  const auto proc = device::Process::typical();
  const auto perf =
      scint::evaluate(proc, testing_support::reference_design(), scint::IntegratorContext{});
  auto stages = ideal_stages(2);
  for (auto& s : stages) s = StageModel::from_performance(perf, s.coefficient);
  const auto ideal = simulate_modulator(ideal_stages(2), default_config());
  const auto real = simulate_modulator(stages, default_config());
  EXPECT_TRUE(real.stable);
  EXPECT_GT(real.sndr_db, ideal.sndr_db - 6.0);  // within a few dB of ideal
}

}  // namespace
}  // namespace anadex::sysdes
