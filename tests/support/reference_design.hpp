// A known-feasible integrator design used as a fixture across circuit-level
// tests. Obtained by a long SACGA run against the paper's chosen spec
// (DR >= 96 dB, OR >= 1.4 V, ST <= 0.24 us, SE <= 7e-4, robustness >= 0.85)
// on the typical process; at the time of extraction it measured
// P = 0.221 mW, DR = 96.1 dB, OR = 1.59 V, ST = 226 ns, SE = 4.1e-4,
// robustness = 0.94, with all operating-region and matching margins met.
#pragma once

#include "scint/integrator.hpp"

namespace anadex::testing_support {

inline scint::IntegratorDesign reference_design() {
  scint::IntegratorDesign d;
  d.opamp.m1 = {9.57079e-06, 1.99851e-06};
  d.opamp.m3 = {8.98281e-05, 1.51052e-06};
  d.opamp.m5 = {5.74186e-05, 1.99998e-06};
  d.opamp.m6 = {7.6264e-05, 5.89955e-07};
  d.opamp.m7 = {2.47916e-05, 9.99979e-07};
  d.opamp.ibias = 5.8532e-06;
  d.opamp.cc = 1.74454e-12;
  d.cs = 9.37114e-13;
  d.coc = 1.76315e-12;
  d.cload = 3.11979e-12;
  return d;
}

}  // namespace anadex::testing_support
