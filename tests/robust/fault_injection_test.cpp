#include "robust/fault_injection.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "problems/analytic.hpp"
#include "robust/guarded_problem.hpp"

namespace anadex::robust {
namespace {

std::shared_ptr<const moga::Problem> zdt1() {
  return std::shared_ptr<const moga::Problem>(problems::make_zdt1(4));
}

std::vector<double> random_genome(Rng& rng) {
  std::vector<double> genes(4);
  for (double& g : genes) g = rng.uniform();
  return genes;
}

TEST(FaultInjection, ZeroRatesPassThrough) {
  FaultInjectingProblem injected(zdt1(), FaultInjectionConfig{});
  const auto inner = problems::make_zdt1(4);
  const std::vector<double> genes{0.1, 0.2, 0.3, 0.4};
  const auto a = injected.evaluated(genes);
  const auto b = inner->evaluated(genes);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(injected.counters().evaluations, 1u);
  EXPECT_EQ(injected.counters().exceptions, 0u);
  EXPECT_EQ(injected.counters().nans, 0u);
}

TEST(FaultInjection, CertainExceptionRateAlwaysThrows) {
  FaultInjectionConfig config;
  config.exception_rate = 1.0;
  FaultInjectingProblem injected(zdt1(), config);
  moga::Evaluation out;
  EXPECT_THROW(injected.evaluate(std::vector<double>{0.5, 0.5, 0.5, 0.5}, out), InjectedFault);
  EXPECT_EQ(injected.counters().exceptions, 1u);
}

TEST(FaultInjection, CertainNanRateCorruptsOneObjective) {
  FaultInjectionConfig config;
  config.nan_rate = 1.0;
  FaultInjectingProblem injected(zdt1(), config);
  const auto eval = injected.evaluated(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  std::size_t nan_count = 0;
  for (double v : eval.objectives) {
    if (std::isnan(v)) ++nan_count;
  }
  EXPECT_EQ(nan_count, 1u);
  EXPECT_EQ(injected.counters().nans, 1u);
}

TEST(FaultInjection, DecisionsAreAPureFunctionOfTheGenome) {
  FaultInjectionConfig config;
  config.exception_rate = 0.3;
  config.nan_rate = 0.3;
  FaultInjectingProblem injected(zdt1(), config);

  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto genes = random_genome(rng);
    moga::Evaluation first;
    moga::Evaluation second;
    bool first_threw = false;
    bool second_threw = false;
    try {
      injected.evaluate(genes, first);
    } catch (const InjectedFault&) {
      first_threw = true;
    }
    try {
      injected.evaluate(genes, second);
    } catch (const InjectedFault&) {
      second_threw = true;
    }
    EXPECT_EQ(first_threw, second_threw);
    if (!first_threw) {
      // NaN != NaN, so compare slots through their classification.
      ASSERT_EQ(first.objectives.size(), second.objectives.size());
      for (std::size_t k = 0; k < first.objectives.size(); ++k) {
        if (std::isnan(first.objectives[k])) {
          EXPECT_TRUE(std::isnan(second.objectives[k]));
        } else {
          EXPECT_EQ(first.objectives[k], second.objectives[k]);
        }
      }
    }
  }
}

TEST(FaultInjection, ObservedRatesTrackConfiguredRates) {
  FaultInjectionConfig config;
  config.exception_rate = 0.1;
  config.nan_rate = 0.1;
  FaultInjectingProblem injected(zdt1(), config);

  Rng rng(7);
  const std::size_t trials = 4000;
  for (std::size_t i = 0; i < trials; ++i) {
    moga::Evaluation out;
    try {
      injected.evaluate(random_genome(rng), out);
    } catch (const InjectedFault&) {
    }
  }
  const auto& c = injected.counters();
  EXPECT_EQ(c.evaluations, trials);
  EXPECT_NEAR(static_cast<double>(c.exceptions) / static_cast<double>(trials), 0.1, 0.03);
  // NaN draws only happen on non-throwing calls (~90% of them).
  EXPECT_NEAR(static_cast<double>(c.nans) / static_cast<double>(trials), 0.09, 0.03);
}

TEST(FaultInjection, SlowPathCountsAndStillEvaluates) {
  FaultInjectionConfig config;
  config.slow_rate = 1.0;
  config.slow_spin_iterations = 1000;
  FaultInjectingProblem injected(zdt1(), config);
  const auto eval = injected.evaluated(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  EXPECT_EQ(eval.objectives.size(), 2u);
  EXPECT_EQ(injected.counters().slow, 1u);
}

TEST(FaultInjection, RejectsOutOfRangeRates) {
  FaultInjectionConfig bad;
  bad.nan_rate = 1.5;
  EXPECT_THROW(FaultInjectingProblem(zdt1(), bad), PreconditionError);
  EXPECT_THROW(FaultInjectingProblem(nullptr, FaultInjectionConfig{}), PreconditionError);
}

TEST(FaultInjection, GuardAbsorbsEveryInjectedFault) {
  FaultInjectionConfig config;
  config.exception_rate = 0.2;
  config.nan_rate = 0.2;
  auto injected = std::make_shared<FaultInjectingProblem>(zdt1(), config);
  GuardedProblem guard(injected, GuardPolicy{});

  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto eval = guard.evaluated(random_genome(rng));
    for (double v : eval.objectives) EXPECT_TRUE(std::isfinite(v));
  }
  // Every injected fault passed through the guard, so the two sides of the
  // pipeline must agree exactly.
  EXPECT_EQ(guard.report().exceptions, injected->counters().exceptions);
  EXPECT_EQ(guard.report().non_finite, injected->counters().nans);
}

}  // namespace
}  // namespace anadex::robust
