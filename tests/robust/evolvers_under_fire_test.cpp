// Acceptance test for the fault-tolerant evaluation pipeline: every evolver
// must complete a 200-generation run on a problem that throws on 5% of
// evaluations and returns NaN on another 5%, without crashing, and the
// guard's FaultReport must agree exactly with what the injector actually
// did (nothing double-counted, nothing leaked past the guard).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "moga/nsga2.hpp"
#include "problems/analytic.hpp"
#include "robust/fault_injection.hpp"
#include "robust/guarded_problem.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::robust {
namespace {

constexpr std::size_t kGenerations = 200;
constexpr std::size_t kPopulation = 24;

struct Pipeline {
  std::shared_ptr<FaultInjectingProblem> injector;
  std::unique_ptr<GuardedProblem> guard;
};

Pipeline make_pipeline() {
  FaultInjectionConfig config;
  config.exception_rate = 0.05;
  config.nan_rate = 0.05;
  config.seed = 99;
  Pipeline p;
  p.injector = std::make_shared<FaultInjectingProblem>(
      std::shared_ptr<const moga::Problem>(problems::make_zdt1(8)), config);
  p.guard = std::make_unique<GuardedProblem>(p.injector, GuardPolicy{});
  return p;
}

void expect_report_matches_injector(const Pipeline& p) {
  // Every evaluation flowed injector -> guard, so the guard must have seen
  // exactly the faults the injector manufactured.
  EXPECT_GT(p.injector->counters().evaluations, 0u);
  EXPECT_GT(p.guard->report().total_faults(), 0u);
  EXPECT_EQ(p.guard->report().exceptions, p.injector->counters().exceptions);
  EXPECT_EQ(p.guard->report().non_finite, p.injector->counters().nans);
  EXPECT_EQ(p.guard->report().wrong_arity, 0u);
}

void expect_finite_front(const moga::Population& front) {
  EXPECT_FALSE(front.empty());
  for (const auto& ind : front) {
    for (double v : ind.eval.objectives) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(EvolversUnderFire, Nsga2CompletesWithFaultsAccounted) {
  Pipeline p = make_pipeline();
  moga::Nsga2Params params;
  params.population_size = kPopulation;
  params.generations = kGenerations;
  params.seed = 1;
  const auto result = moga::run_nsga2(*p.guard, params);
  EXPECT_EQ(result.generations_run, kGenerations);
  expect_finite_front(result.front);
  expect_report_matches_injector(p);
}

TEST(EvolversUnderFire, LocalOnlyCompletesWithFaultsAccounted) {
  Pipeline p = make_pipeline();
  sacga::LocalOnlyParams params;
  params.population_size = kPopulation;
  params.partitions = 4;
  params.axis_objective = 1;
  params.axis_lo = 0.0;
  params.axis_hi = 10.0;
  params.generations = kGenerations;
  params.seed = 2;
  const auto result = sacga::run_local_only(*p.guard, params);
  EXPECT_EQ(result.generations_run, kGenerations);
  expect_finite_front(result.front);
  expect_report_matches_injector(p);
}

TEST(EvolversUnderFire, SacgaCompletesWithFaultsAccounted) {
  Pipeline p = make_pipeline();
  sacga::SacgaParams params;
  params.population_size = kPopulation;
  params.partitions = 4;
  params.axis_objective = 1;
  params.axis_lo = 0.0;
  params.axis_hi = 10.0;
  params.phase1_max_generations = 20;
  params.span = kGenerations;
  params.span_is_total_budget = true;
  params.seed = 3;
  const auto result = sacga::run_sacga(*p.guard, params);
  EXPECT_EQ(result.generations_run, kGenerations);
  expect_finite_front(result.front);
  expect_report_matches_injector(p);
}

TEST(EvolversUnderFire, MesacgaCompletesWithFaultsAccounted) {
  Pipeline p = make_pipeline();
  sacga::MesacgaParams params;
  params.population_size = kPopulation;
  params.partition_schedule = {4, 2, 1};
  params.axis_objective = 1;
  params.axis_lo = 0.0;
  params.axis_hi = 10.0;
  params.phase1_max_generations = 20;
  params.total_budget = kGenerations;
  params.seed = 4;
  const auto result = sacga::run_mesacga(*p.guard, params);
  EXPECT_GE(result.generations_run, kGenerations - params.partition_schedule.size());
  expect_finite_front(result.front);
  expect_report_matches_injector(p);
}

TEST(EvolversUnderFire, IslandGaCompletesWithFaultsAccounted) {
  Pipeline p = make_pipeline();
  sacga::IslandParams params;
  params.islands = 2;
  params.island_population = 12;
  params.generations = kGenerations;
  params.migration_interval = 25;
  params.seed = 5;
  const auto result = sacga::run_island_ga(*p.guard, params);
  EXPECT_EQ(result.generations_run, kGenerations);
  expect_finite_front(result.front);
  expect_report_matches_injector(p);
}

}  // namespace
}  // namespace anadex::robust
