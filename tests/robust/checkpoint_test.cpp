#include "robust/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace anadex::robust {
namespace {

moga::Individual make_individual(double x, int rank, double crowding) {
  moga::Individual ind;
  ind.genes = {x, 1.0 - x};
  ind.eval.objectives = {x * x, (x - 2.0) * (x - 2.0)};
  ind.eval.violations = {0.0};
  ind.rank = rank;
  ind.crowding = crowding;
  return ind;
}

moga::Population make_population() {
  moga::Population pop;
  pop.push_back(make_individual(0.125, 0, moga::Individual::kInfiniteCrowding));
  pop.push_back(make_individual(0.3, 0, 0.75));
  pop.push_back(make_individual(0.9, 1, 1.0 / 3.0));  // not exactly representable in decimal
  pop.push_back(make_individual(0.7, 2, 0.0));
  return pop;
}

RngState make_rng_state(std::uint64_t seed, int warmup_normals) {
  Rng rng(seed);
  for (int i = 0; i < warmup_normals; ++i) (void)rng.normal();
  return rng.state();
}

void expect_population_eq(const moga::Population& a, const moga::Population& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].genes, b[i].genes);
    EXPECT_EQ(a[i].eval.objectives, b[i].eval.objectives);
    EXPECT_EQ(a[i].eval.violations, b[i].eval.violations);
    EXPECT_EQ(a[i].rank, b[i].rank);
    EXPECT_EQ(a[i].crowding, b[i].crowding);  // inf == inf holds
  }
}

Checkpoint base_checkpoint() {
  Checkpoint cp;
  cp.meta.algo = "SACGA";
  cp.meta.seed = 42;
  cp.meta.population = 4;
  cp.meta.generations = 100;
  cp.meta.config = "partitions=8 span=0 stride=25";
  cp.faults.exceptions = 3;
  cp.faults.non_finite = 1;
  cp.faults.retries = 4;
  cp.faults.recovered = 2;
  cp.faults.penalized = 2;
  cp.faults.failure_genes = {0.25, 0.75};
  cp.faults.failure_message = "exception: simulated divergence";
  cp.history.push_back({25, 38.5, 7});
  cp.history.push_back({50, 30.25, 9});
  return cp;
}

void expect_common_eq(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.meta, b.meta);
  EXPECT_EQ(a.faults.exceptions, b.faults.exceptions);
  EXPECT_EQ(a.faults.non_finite, b.faults.non_finite);
  EXPECT_EQ(a.faults.wrong_arity, b.faults.wrong_arity);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.recovered, b.faults.recovered);
  EXPECT_EQ(a.faults.penalized, b.faults.penalized);
  EXPECT_EQ(a.faults.failure_genes, b.faults.failure_genes);
  EXPECT_EQ(a.faults.failure_message, b.faults.failure_message);
  EXPECT_EQ(a.history, b.history);
}

Checkpoint round_trip(const Checkpoint& cp) {
  std::stringstream stream;
  save_checkpoint(stream, cp);
  return load_checkpoint(stream);
}

TEST(Checkpoint, RoundTripsNsga2State) {
  Checkpoint cp = base_checkpoint();
  moga::Nsga2State state;
  state.parents = make_population();
  state.rng = make_rng_state(9, 1);  // odd warmup leaves a cached spare normal
  state.next_generation = 57;
  state.evaluations = 5800;
  cp.nsga2 = state;

  const Checkpoint loaded = round_trip(cp);
  expect_common_eq(cp, loaded);
  ASSERT_TRUE(loaded.nsga2.has_value());
  EXPECT_EQ(loaded.state_kind(), "nsga2");
  EXPECT_EQ(loaded.nsga2->rng, state.rng);
  EXPECT_TRUE(loaded.nsga2->rng.has_spare_normal);
  EXPECT_EQ(loaded.nsga2->next_generation, 57u);
  EXPECT_EQ(loaded.nsga2->evaluations, 5800u);
  expect_population_eq(loaded.nsga2->parents, state.parents);
}

TEST(Checkpoint, RestoredRngContinuesTheSameStream) {
  Checkpoint cp = base_checkpoint();
  Rng original(123);
  for (int i = 0; i < 7; ++i) (void)original.normal();
  moga::Nsga2State state;
  state.parents = make_population();
  state.rng = original.state();
  cp.nsga2 = state;

  const Checkpoint loaded = round_trip(cp);
  Rng restored(1);
  restored.set_state(loaded.nsga2->rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored(), original());
    EXPECT_EQ(restored.normal(), original.normal());
  }
}

TEST(Checkpoint, RoundTripsSpea2State) {
  Checkpoint cp = base_checkpoint();
  moga::Spea2State state;
  state.population = make_population();
  state.archive = make_population();
  state.archive.pop_back();  // archive and population sizes differ
  state.rng = make_rng_state(11, 1);
  state.next_generation = 33;
  state.evaluations = 3400;
  cp.spea2 = state;

  const Checkpoint loaded = round_trip(cp);
  expect_common_eq(cp, loaded);
  ASSERT_TRUE(loaded.spea2.has_value());
  EXPECT_EQ(loaded.state_kind(), "spea2");
  EXPECT_EQ(loaded.spea2->rng, state.rng);
  EXPECT_EQ(loaded.spea2->next_generation, 33u);
  EXPECT_EQ(loaded.spea2->evaluations, 3400u);
  expect_population_eq(loaded.spea2->population, state.population);
  expect_population_eq(loaded.spea2->archive, state.archive);
}

TEST(Checkpoint, RoundTripsSacgaStateWithDiscardedPartitions) {
  Checkpoint cp = base_checkpoint();
  sacga::SacgaState state;
  state.evolver.population = make_population();
  state.evolver.discarded = {false, true, false, true, true};
  state.evolver.partitions = 5;
  state.evolver.rng = make_rng_state(17, 0);
  state.evolver.evaluations = 4321;
  state.evolver.generation = 87;
  state.phase1_done = true;
  state.phase1_generations = 12;
  cp.sacga = state;

  const Checkpoint loaded = round_trip(cp);
  expect_common_eq(cp, loaded);
  ASSERT_TRUE(loaded.sacga.has_value());
  EXPECT_EQ(loaded.sacga->evolver.discarded, state.evolver.discarded);
  EXPECT_EQ(loaded.sacga->evolver.partitions, 5u);
  EXPECT_EQ(loaded.sacga->evolver.rng, state.evolver.rng);
  EXPECT_EQ(loaded.sacga->evolver.generation, 87u);
  EXPECT_TRUE(loaded.sacga->phase1_done);
  EXPECT_EQ(loaded.sacga->phase1_generations, 12u);
  expect_population_eq(loaded.sacga->evolver.population, state.evolver.population);
}

TEST(Checkpoint, RoundTripsMesacgaStateWithPhaseHistory) {
  Checkpoint cp = base_checkpoint();
  sacga::MesacgaState state;
  state.evolver.population = make_population();
  state.evolver.discarded = {false, false};
  state.evolver.partitions = 2;
  state.evolver.rng = make_rng_state(5, 2);
  state.evolver.generation = 140;
  state.phase1_done = true;
  state.phase1_generations = 20;
  sacga::PhaseSnapshot phase;
  phase.phase = 1;
  phase.partitions = 4;
  phase.generation = 80;
  phase.front = make_population();
  state.phases.push_back(phase);
  cp.mesacga = state;

  const Checkpoint loaded = round_trip(cp);
  ASSERT_TRUE(loaded.mesacga.has_value());
  ASSERT_EQ(loaded.mesacga->phases.size(), 1u);
  EXPECT_EQ(loaded.mesacga->phases[0].phase, 1u);
  EXPECT_EQ(loaded.mesacga->phases[0].partitions, 4u);
  EXPECT_EQ(loaded.mesacga->phases[0].generation, 80u);
  expect_population_eq(loaded.mesacga->phases[0].front, phase.front);
}

TEST(Checkpoint, RoundTripsLocalOnlyAndIslandStates) {
  {
    Checkpoint cp = base_checkpoint();
    sacga::LocalOnlyState state;
    state.evolver.population = make_population();
    state.evolver.discarded = {false, false, false};
    state.evolver.partitions = 3;
    state.evolver.rng = make_rng_state(2, 0);
    state.evolver.generation = 10;
    cp.local_only = state;
    const Checkpoint loaded = round_trip(cp);
    ASSERT_TRUE(loaded.local_only.has_value());
    EXPECT_EQ(loaded.local_only->evolver.generation, 10u);
  }
  {
    Checkpoint cp = base_checkpoint();
    sacga::IslandState state;
    state.islands = {make_population(), make_population()};
    state.rngs = {make_rng_state(3, 1), make_rng_state(4, 0)};
    state.next_generation = 64;
    state.evaluations = 9000;
    state.migrations = 2;
    cp.island = state;
    const Checkpoint loaded = round_trip(cp);
    ASSERT_TRUE(loaded.island.has_value());
    ASSERT_EQ(loaded.island->islands.size(), 2u);
    EXPECT_EQ(loaded.island->rngs, state.rngs);
    EXPECT_EQ(loaded.island->migrations, 2u);
    expect_population_eq(loaded.island->islands[1], state.islands[1]);
  }
}

TEST(Checkpoint, NonFiniteValuesSurviveTheRoundTrip) {
  Checkpoint cp = base_checkpoint();
  moga::Nsga2State state;
  moga::Individual poisoned = make_individual(0.5, 0, moga::Individual::kInfiniteCrowding);
  poisoned.eval.objectives[1] = std::numeric_limits<double>::quiet_NaN();
  state.parents.push_back(poisoned);
  cp.nsga2 = state;

  const Checkpoint loaded = round_trip(cp);
  const auto& ind = loaded.nsga2->parents.at(0);
  EXPECT_TRUE(std::isnan(ind.eval.objectives[1]));
  EXPECT_TRUE(std::isinf(ind.crowding));
}

TEST(Checkpoint, RequiresExactlyOneState) {
  Checkpoint cp = base_checkpoint();
  std::stringstream stream;
  EXPECT_THROW(save_checkpoint(stream, cp), PreconditionError);  // zero states
  cp.nsga2 = moga::Nsga2State{};
  cp.island = sacga::IslandState{};
  EXPECT_THROW(save_checkpoint(stream, cp), PreconditionError);  // two states
}

std::string valid_checkpoint_text() {
  Checkpoint cp = base_checkpoint();
  cp.nsga2 = moga::Nsga2State{};
  cp.nsga2->parents = make_population();
  std::stringstream stream;
  save_checkpoint(stream, cp);
  return stream.str();
}

TEST(Checkpoint, RejectsMalformedInput) {
  {
    // Version gate fires before anything else, naming both versions.
    std::stringstream stream("anadex-checkpoint v99\n");
    try {
      load_checkpoint(stream, "test.cp");
      FAIL() << "expected PreconditionError";
    } catch (const PreconditionError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("test.cp"), std::string::npos) << what;
      EXPECT_NE(what.find("anadex-checkpoint v2"), std::string::npos) << what;
      EXPECT_NE(what.find("anadex-checkpoint v99"), std::string::npos) << what;
    }
  }
  {
    std::string text = valid_checkpoint_text();
    text = text.substr(0, text.size() / 2);  // truncate mid-file
    std::stringstream half(text);
    EXPECT_THROW(load_checkpoint(half), PreconditionError);
  }
  {
    // Flip one byte of the body: the checksum must catch it.
    std::string text = valid_checkpoint_text();
    text[text.size() / 3] ^= 0x08;
    std::stringstream corrupt(text);
    try {
      load_checkpoint(corrupt, "flipped.cp");
      FAIL() << "expected PreconditionError";
    } catch (const PreconditionError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("flipped.cp"), std::string::npos) << what;
      EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    }
  }
  {
    // Unknown state kind, with the trailer recomputed so only the body
    // parser can object.
    std::string text = valid_checkpoint_text();
    const auto state_at = text.find("\nstate nsga2");
    ASSERT_NE(state_at, std::string::npos);
    text.replace(state_at, 12, "\nstate alien");
    const auto end_at = text.rfind("\nend\n");
    ASSERT_NE(end_at, std::string::npos);
    const std::string body = text.substr(0, end_at + 5);
    std::ostringstream fixed;
    fixed << body << "checksum " << std::hex << std::setw(16) << std::setfill('0')
          << hash_bytes(body, 0) << "\n";
    std::stringstream stream(fixed.str());
    EXPECT_THROW(load_checkpoint(stream), PreconditionError);
  }
}

TEST(Checkpoint, FileRoundTripIsAtomic) {
  const std::string path = testing::TempDir() + "anadex_checkpoint_test.txt";
  Checkpoint cp = base_checkpoint();
  moga::Nsga2State state;
  state.parents = make_population();
  state.rng = make_rng_state(1, 0);
  cp.nsga2 = state;

  write_checkpoint_file(path, cp);
  // The temp staging file must not linger after the rename.
  std::ifstream staging(path + ".tmp");
  EXPECT_FALSE(staging.good());

  const Checkpoint loaded = read_checkpoint_file(path);
  expect_common_eq(cp, loaded);
  expect_population_eq(loaded.nsga2->parents, state.parents);
  std::remove(path.c_str());

  EXPECT_THROW(read_checkpoint_file(path), PreconditionError);  // now missing
}

}  // namespace
}  // namespace anadex::robust
