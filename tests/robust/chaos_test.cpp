// Unit tests of the deterministic chaos harness: seeded plan derivation and
// the checkpoint-write crash hook. The end-to-end kill/resume byte-identity
// matrix lives in tests/integration/chaos_recovery_test.cpp.
#include "robust/chaos.hpp"

#include <cstdio>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/nsga2.hpp"

namespace anadex::robust {
namespace {

TEST(ChaosPlan, IsAPureFunctionOfTheSeed) {
  const auto a = ChaosPlan::from_seed(42, 100);
  const auto b = ChaosPlan::from_seed(42, 100);
  EXPECT_EQ(a.faults.seed, b.faults.seed);
  EXPECT_EQ(a.faults.exception_rate, b.faults.exception_rate);
  EXPECT_EQ(a.faults.nan_rate, b.faults.nan_rate);
  EXPECT_EQ(a.faults.slow_rate, b.faults.slow_rate);
  EXPECT_EQ(a.faults.slow_spin_iterations, b.faults.slow_spin_iterations);
  EXPECT_EQ(a.kill_generation, b.kill_generation);
  EXPECT_EQ(a.crash_at_write, b.crash_at_write);

  const auto c = ChaosPlan::from_seed(43, 100);
  EXPECT_NE(a.faults.seed, c.faults.seed);
}

TEST(ChaosPlan, StaysWithinItsDocumentedEnvelope) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto plan = ChaosPlan::from_seed(seed, 40);
    EXPECT_GE(plan.faults.exception_rate, 0.01);
    EXPECT_LE(plan.faults.exception_rate, 0.05);
    EXPECT_GE(plan.faults.nan_rate, 0.01);
    EXPECT_LE(plan.faults.nan_rate, 0.05);
    EXPECT_GE(plan.faults.slow_rate, 0.005);
    EXPECT_LE(plan.faults.slow_rate, 0.02);
    // Kill in the middle half, never at the very start or end.
    EXPECT_GE(plan.kill_generation, 10u);
    EXPECT_LT(plan.kill_generation, 30u);
    EXPECT_GE(plan.crash_at_write, 1u);
    EXPECT_LE(plan.crash_at_write, 3u);
    EXPECT_EQ(ChaosPlan::from_seed(seed, 40, false).crash_at_write, 0u);
  }
  EXPECT_THROW(ChaosPlan::from_seed(1, 3), PreconditionError);
}

Checkpoint small_checkpoint(std::size_t generation) {
  Checkpoint cp;
  cp.meta.algo = "TPG(NSGA-II)";
  cp.meta.seed = 1;
  cp.meta.population = 4;
  cp.meta.generations = 8;
  moga::Nsga2State state;
  state.next_generation = generation;
  cp.nsga2 = state;
  return cp;
}

TEST(ChaosHook, CrashesOnTheConfiguredWriteAndLeavesTheOldFileIntact) {
  const std::string path = testing::TempDir() + "anadex_chaos_hook.cp";
  auto completed = std::make_shared<std::size_t>(0);
  CheckpointWriteOptions options;
  options.hook = make_crashing_write_hook(2, completed);

  write_checkpoint_file(path, small_checkpoint(1), options);
  EXPECT_EQ(*completed, 1u);

  // The second write dies after the temp-file phase: the previous
  // checkpoint must survive untouched, with the orphaned temp alongside.
  EXPECT_THROW(write_checkpoint_file(path, small_checkpoint(2), options),
               InjectedCrash);
  EXPECT_EQ(*completed, 1u);
  const Checkpoint survivor = read_checkpoint_file(path);
  EXPECT_EQ(survivor.nsga2->next_generation, 1u);
  std::ifstream orphan(path + ".tmp");
  EXPECT_TRUE(orphan.good());

  // recover_checkpoint ignores the orphan and finds the good slot.
  const auto recovered = recover_checkpoint(path);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->path, path);

  // The next write simply overwrites the orphaned temp file.
  CheckpointWriteOptions clean;
  write_checkpoint_file(path, small_checkpoint(3), clean);
  EXPECT_EQ(read_checkpoint_file(path).nsga2->next_generation, 3u);

  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

TEST(ChaosHook, ZeroNeverCrashes) {
  const std::string path = testing::TempDir() + "anadex_chaos_nocrash.cp";
  auto completed = std::make_shared<std::size_t>(0);
  CheckpointWriteOptions options;
  options.hook = make_crashing_write_hook(0, completed);
  for (std::size_t i = 0; i < 5; ++i) {
    write_checkpoint_file(path, small_checkpoint(i), options);
  }
  EXPECT_EQ(*completed, 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anadex::robust
