// Graceful-shutdown wiring: the process-global stop token, handler
// idempotence, and an actual SIGINT delivered to this test process. Each
// gtest case runs in its own process under ctest, so raising a signal here
// cannot leak into other tests — but within this file only ONE signal is
// ever raised (the second would _exit by design).
#include "robust/shutdown.hpp"

#include <csignal>

#include <gtest/gtest.h>

namespace anadex::robust {
namespace {

TEST(Shutdown, TokenIsProcessGlobalAndResettable) {
  CancelToken& token = shutdown_token();
  EXPECT_EQ(&token, &shutdown_token());
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(shutdown_token().requested());
  token.reset();
  EXPECT_FALSE(shutdown_token().requested());
}

TEST(Shutdown, FirstSignalRaisesTheStopToken) {
#if defined(__unix__) || defined(__APPLE__)
  install_shutdown_handlers();
  install_shutdown_handlers();  // idempotent
  ASSERT_FALSE(shutdown_token().requested());
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(shutdown_token().requested());
  shutdown_token().reset();
#else
  GTEST_SKIP() << "no sigaction on this platform";
#endif
}

}  // namespace
}  // namespace anadex::robust
