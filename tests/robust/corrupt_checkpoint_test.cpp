// Table-driven corruption suite for the durable-checkpoint layer: every
// damaged-file shape must (a) fail loading with a diagnostic naming the
// file, and (b) be skipped by recover_checkpoint in favor of the newest
// rotated slot that still checksum-verifies — the `--resume auto` path.
#include "robust/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "expt/runner.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::robust {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

Checkpoint make_checkpoint(std::size_t next_generation) {
  Checkpoint cp;
  cp.meta.algo = "TPG(NSGA-II)";
  cp.meta.seed = 7;
  cp.meta.population = 8;
  cp.meta.generations = 64;
  cp.meta.config = "corrupt-suite";
  moga::Nsga2State state;
  moga::Individual ind;
  ind.genes = {0.25, 0.5};
  ind.eval.objectives = {1.0, 2.0};
  state.parents.push_back(ind);
  state.next_generation = next_generation;
  cp.nsga2 = state;
  return cp;
}

/// One way of damaging a checkpoint file's bytes.
struct Corruption {
  const char* name;
  std::function<std::string(std::string)> mutate;
  /// Substring the load diagnostic must contain (besides the path).
  const char* diagnostic;
};

std::vector<Corruption> corruption_table() {
  return {
      {"truncated-half",
       [](std::string text) { return text.substr(0, text.size() / 2); },
       "truncated"},
      {"truncated-tail",  // cuts into the trailer's checksum hex
       [](std::string text) { return text.substr(0, text.size() - 12); },
       "checksum"},
      {"bit-flipped",
       [](std::string text) {
         text[text.size() / 3] ^= 0x10;
         return text;
       },
       "checksum"},
      {"bad-checksum",
       [](std::string text) {
         const auto at = text.rfind("checksum ");
         text.replace(at + 9, 16, std::string(16, '0'));
         return text;
       },
       "checksum"},
      {"wrong-version",
       [](std::string text) {
         return "anadex-checkpoint v7" + text.substr(text.find('\n'));
       },
       "anadex-checkpoint v7"},
      {"emptied", [](std::string) { return std::string(); }, "version mismatch"},
  };
}

TEST(CorruptCheckpoint, EveryShapeFailsLoudlyWithPathAndReason) {
  const std::string path = testing::TempDir() + "anadex_corrupt_load.cp";
  for (const auto& corruption : corruption_table()) {
    write_checkpoint_file(path, make_checkpoint(10));
    spit(path, corruption.mutate(slurp(path)));
    try {
      (void)read_checkpoint_file(path);
      FAIL() << corruption.name << ": expected PreconditionError";
    } catch (const PreconditionError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(path), std::string::npos)
          << corruption.name << ": " << what;
      EXPECT_NE(what.find(corruption.diagnostic), std::string::npos)
          << corruption.name << ": " << what;
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptCheckpoint, DiagnosticsReportByteOffsets) {
  const std::string path = testing::TempDir() + "anadex_corrupt_offset.cp";
  write_checkpoint_file(path, make_checkpoint(10));
  const std::string text = slurp(path);
  spit(path, text.substr(0, text.size() / 2));
  try {
    (void)read_checkpoint_file(path);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    // "... (at byte N of M)" places the failure inside the damaged file.
    const std::string what = e.what();
    EXPECT_NE(what.find("at byte "), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(CorruptCheckpoint, RecoverFallsBackToNewestGoodSlot) {
  const std::string base = testing::TempDir() + "anadex_corrupt_recover.cp";
  CheckpointWriteOptions keep2;
  keep2.keep = 2;
  for (const auto& corruption : corruption_table()) {
    // Two rotated writes: slot .1 holds generation 10, slot 0 generation 20.
    write_checkpoint_file(base, make_checkpoint(10), keep2);
    write_checkpoint_file(base, make_checkpoint(20), keep2);
    spit(base, corruption.mutate(slurp(base)));

    const auto recovered = recover_checkpoint(base);
    ASSERT_TRUE(recovered.has_value()) << corruption.name;
    EXPECT_EQ(recovered->path, base + ".1") << corruption.name;
    ASSERT_TRUE(recovered->checkpoint.nsga2.has_value()) << corruption.name;
    EXPECT_EQ(recovered->checkpoint.nsga2->next_generation, 10u) << corruption.name;
    // The skipped slot is reported, so callers can surface what was lost.
    ASSERT_EQ(recovered->rejected.size(), 1u) << corruption.name;
    EXPECT_NE(recovered->rejected[0].find(base), std::string::npos)
        << corruption.name;
  }
  std::remove(base.c_str());
  std::remove((base + ".1").c_str());
}

TEST(CorruptCheckpoint, RecoverReturnsNulloptWhenEverySlotIsBad) {
  const std::string base = testing::TempDir() + "anadex_corrupt_all_bad.cp";
  CheckpointWriteOptions keep2;
  keep2.keep = 2;
  write_checkpoint_file(base, make_checkpoint(10), keep2);
  write_checkpoint_file(base, make_checkpoint(20), keep2);
  spit(base, "anadex-checkpoint v2\ngarbage\n");
  spit(base + ".1", "");
  const auto recovered = recover_checkpoint(base);
  EXPECT_FALSE(recovered.has_value());
  std::remove(base.c_str());
  std::remove((base + ".1").c_str());

  // And with no files at all (the very first `--resume auto` invocation).
  EXPECT_FALSE(recover_checkpoint(base).has_value());
}

TEST(CorruptCheckpoint, ResumeAutoFallsBackThroughTheRotationChain) {
  // Full-runner version of the fallback: a checkpointed run whose newest
  // slot is then corrupted must auto-resume from the previous rotation and
  // still finish identical to an uninterrupted run.
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  expt::RunSettings settings;
  settings.algo = expt::Algo::TPG;
  settings.spec = problems::spec_suite().front();
  settings.population = 16;
  settings.generations = 12;
  settings.seed = 3;
  const auto full = expt::run(problem, settings);

  settings.checkpoint_path = testing::TempDir() + "anadex_auto_fallback.cp";
  settings.checkpoint_every = 4;
  settings.checkpoint_keep = 3;
  (void)expt::run(problem, settings);
  // Rotation after the run: slot 0 = gen 12, .1 = gen 8, .2 = gen 4.
  spit(settings.checkpoint_path, slurp(settings.checkpoint_path).substr(0, 40));

  settings.resume = expt::ResumeMode::Auto;
  const auto resumed = expt::run(problem, settings);
  EXPECT_EQ(resumed.resumed_from_path, settings.checkpoint_path + ".1");
  EXPECT_EQ(resumed.resumed_from_generation, 8u);
  ASSERT_EQ(resumed.front.size(), full.front.size());
  for (std::size_t i = 0; i < full.front.size(); ++i) {
    EXPECT_EQ(resumed.front[i].power_w, full.front[i].power_w);
    EXPECT_EQ(resumed.front[i].cload_f, full.front[i].cload_f);
  }

  for (const char* suffix : {"", ".1", ".2"}) {
    std::remove((settings.checkpoint_path + suffix).c_str());
  }
}

}  // namespace
}  // namespace anadex::robust
