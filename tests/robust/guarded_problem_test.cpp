#include "robust/guarded_problem.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "problems/analytic.hpp"

namespace anadex::robust {
namespace {

/// Two-variable, two-objective inner problem whose failure mode is selected
/// by the FIRST gene: < 0.25 clean, [0.25, 0.5) throws, [0.5, 0.75) NaN
/// objective, >= 0.75 wrong arity. Gene-driven behavior keeps the inner
/// problem deterministic, matching the Problem contract.
class FlakyProblem final : public moga::Problem {
 public:
  std::string name() const override { return "flaky"; }
  std::size_t num_variables() const override { return 2; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 1; }
  std::vector<moga::VariableBound> bounds() const override {
    return {{0.0, 1.0}, {0.0, 1.0}};
  }
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    if (genes[0] >= 0.25 && genes[0] < 0.5) throw std::runtime_error("flaky boom");
    out.objectives = {genes[0], genes[1]};
    out.violations = {0.0};
    if (genes[0] >= 0.5 && genes[0] < 0.75) {
      out.objectives[1] = std::numeric_limits<double>::quiet_NaN();
    }
    if (genes[0] >= 0.75) out.objectives.push_back(3.0);
  }
};

std::shared_ptr<const moga::Problem> flaky() { return std::make_shared<FlakyProblem>(); }

TEST(GuardedProblem, PassesCleanEvaluationsThroughUntouched) {
  GuardedProblem guard(flaky(), GuardPolicy{});
  const auto eval = guard.evaluated(std::vector<double>{0.1, 0.6});
  EXPECT_EQ(eval.objectives, (std::vector<double>{0.1, 0.6}));
  EXPECT_EQ(eval.violations, (std::vector<double>{0.0}));
  EXPECT_EQ(guard.report().total_faults(), 0u);
  EXPECT_FALSE(guard.report().any());
}

TEST(GuardedProblem, MirrorsInnerProblemShape) {
  GuardedProblem guard(flaky(), GuardPolicy{});
  EXPECT_EQ(guard.name(), "flaky+guard");
  EXPECT_EQ(guard.num_variables(), 2u);
  EXPECT_EQ(guard.num_objectives(), 2u);
  EXPECT_EQ(guard.num_constraints(), 1u);
  EXPECT_EQ(guard.bounds().size(), 2u);
}

TEST(GuardedProblem, RecoversViaPerturbedRetryNearAFaultBoundary) {
  // The gene sits a hair inside the faulty [0.25, 0.5) band and the wide
  // perturbation gives 8 chances to escape it. The retry stream is a fixed
  // function of the genome, so whichever way it lands the outcome is stable;
  // assert the bookkeeping invariants that hold either way and the finite
  // result when recovery happened.
  GuardPolicy policy;
  policy.max_retries = 8;
  policy.perturbation = 0.3;
  GuardedProblem guard(flaky(), policy);
  const auto eval = guard.evaluated(std::vector<double>{0.2500001, 0.5});
  const auto& report = guard.report();
  EXPECT_GE(report.exceptions, 1u);
  EXPECT_EQ(report.recovered + report.penalized, 1u);
  if (report.recovered == 1) {
    for (double v : eval.objectives) EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(report.retries, 1u);
  }
}

TEST(GuardedProblem, PenalizesWhenEveryRetryFaults) {
  GuardPolicy policy;
  policy.max_retries = 2;
  policy.perturbation = 1e-6;  // stays deep inside the faulty band
  policy.penalty_objective = 5e8;
  policy.penalty_violation = 7e8;
  GuardedProblem guard(flaky(), policy);
  const auto eval = guard.evaluated(std::vector<double>{0.4, 0.5});

  EXPECT_EQ(eval.objectives, (std::vector<double>{5e8, 5e8}));
  EXPECT_EQ(eval.violations, (std::vector<double>{7e8}));
  EXPECT_FALSE(eval.feasible());

  const auto& report = guard.report();
  EXPECT_EQ(report.exceptions, 3u);  // original + 2 retries
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.penalized, 1u);
}

TEST(GuardedProblem, CountsNonFiniteAndWrongArityFaults) {
  GuardPolicy policy;
  policy.max_retries = 0;
  GuardedProblem guard(flaky(), policy);
  (void)guard.evaluated(std::vector<double>{0.6, 0.5});   // NaN objective
  (void)guard.evaluated(std::vector<double>{0.8, 0.5});   // wrong arity
  const auto& report = guard.report();
  EXPECT_EQ(report.non_finite, 1u);
  EXPECT_EQ(report.wrong_arity, 1u);
  EXPECT_EQ(report.penalized, 2u);
  EXPECT_EQ(report.total_faults(), 2u);
}

TEST(GuardedProblem, RecordsCanonicalSampleFailure) {
  // The retained sample is the failure whose genome hashes lowest — a
  // canonical choice independent of evaluation order (and therefore of the
  // engine's thread count), not "whichever failed first".
  GuardPolicy policy;
  policy.max_retries = 0;
  GuardedProblem guard(flaky(), policy);
  const std::vector<double> throws_genes{0.3, 0.9};   // exception: flaky boom
  const std::vector<double> nan_genes{0.6, 0.1};      // non-finite objective
  (void)guard.evaluated(throws_genes);
  (void)guard.evaluated(nan_genes);
  const auto forward = guard.report();

  const bool throws_wins = hash_genes(throws_genes, 0) < hash_genes(nan_genes, 0);
  const auto& expected = throws_wins ? throws_genes : nan_genes;
  EXPECT_EQ(forward.failure_genes, expected);
  if (throws_wins) {
    EXPECT_NE(forward.failure_message.find("flaky boom"), std::string::npos);
  } else {
    EXPECT_NE(forward.failure_message.find("non-finite"), std::string::npos);
  }

  // Reversed evaluation order retains the same sample.
  GuardedProblem reversed_guard(flaky(), policy);
  (void)reversed_guard.evaluated(nan_genes);
  (void)reversed_guard.evaluated(throws_genes);
  const auto reversed = reversed_guard.report();
  EXPECT_EQ(reversed.failure_genes, forward.failure_genes);
  EXPECT_EQ(reversed.failure_message, forward.failure_message);
}

TEST(GuardedProblem, EvaluationIsDeterministic) {
  GuardPolicy policy;
  policy.max_retries = 3;
  policy.perturbation = 0.2;
  GuardedProblem guard(flaky(), policy);
  const std::vector<double> genes{0.26, 0.5};
  const auto a = guard.evaluated(genes);
  const auto b = guard.evaluated(genes);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(GuardedProblem, SummaryMentionsEveryCounter) {
  GuardPolicy policy;
  policy.max_retries = 0;
  GuardedProblem guard(flaky(), policy);
  (void)guard.evaluated(std::vector<double>{0.3, 0.9});
  const std::string text = guard.report().summary();
  EXPECT_NE(text.find("1 fault(s)"), std::string::npos);
  EXPECT_NE(text.find("penalized"), std::string::npos);
}

TEST(GuardedProblem, RejectsBadConstruction) {
  EXPECT_THROW(GuardedProblem(nullptr, GuardPolicy{}), PreconditionError);
  GuardPolicy bad;
  bad.penalty_objective = std::numeric_limits<double>::infinity();
  EXPECT_THROW(GuardedProblem(flaky(), bad), PreconditionError);
}

TEST(GuardedProblem, SetReportRestoresCumulativeCounters) {
  GuardedProblem guard(flaky(), GuardPolicy{});
  FaultReport prior;
  prior.exceptions = 7;
  prior.penalized = 2;
  guard.set_report(prior);
  (void)guard.evaluated(std::vector<double>{0.1, 0.1});  // clean
  EXPECT_EQ(guard.report().exceptions, 7u);
  EXPECT_EQ(guard.report().penalized, 2u);
}

TEST(GuardedProblem, BackoffNeverChangesEvaluationResults) {
  // The retry backoff is busy-spin only — a pure function of (genes,
  // attempt index), never a wall-clock wait — so turning it on must leave
  // every evaluation, clean or penalized, bit-identical.
  GuardPolicy plain;
  GuardPolicy spaced = plain;
  spaced.backoff_spin_base = 256;
  GuardedProblem without(flaky(), plain);
  GuardedProblem with(flaky(), spaced);

  const std::vector<std::vector<double>> genomes{
      {0.1, 0.6},   // clean
      {0.3, 0.2},   // throws on every retry → penalized
      {0.6, 0.4},   // NaN objective → penalized or recovered
  };
  for (const auto& genes : genomes) {
    const auto a = without.evaluated(genes);
    const auto b = with.evaluated(genes);
    ASSERT_EQ(a.objectives.size(), b.objectives.size());
    for (std::size_t i = 0; i < a.objectives.size(); ++i) {
      // EXPECT_EQ on doubles is bitwise here (no NaNs survive the guard).
      EXPECT_EQ(a.objectives[i], b.objectives[i]);
    }
    EXPECT_EQ(a.violations, b.violations);
  }
  const auto ra = without.report();
  const auto rb = with.report();
  EXPECT_EQ(ra.exceptions, rb.exceptions);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.recovered, rb.recovered);
  EXPECT_EQ(ra.penalized, rb.penalized);
}

TEST(GuardedProblem, BackoffIsDeterministicAcrossInstances) {
  GuardPolicy policy;
  policy.backoff_spin_base = 64;
  policy.max_retries = 3;
  GuardedProblem first(flaky(), policy);
  GuardedProblem second(flaky(), policy);
  const std::vector<double> faulty{0.3, 0.9};
  const auto a = first.evaluated(faulty);
  const auto c = second.evaluated(faulty);
  EXPECT_EQ(a.objectives, c.objectives);
  EXPECT_EQ(first.report().retries, second.report().retries);
  // Re-evaluating the same genes on the same instance doubles the tallies
  // but yields the same evaluation — the Problem purity contract.
  const auto b = first.evaluated(faulty);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(first.report().retries, 2 * second.report().retries);
}

TEST(HashGenes, IsStableAndSeedSensitive) {
  const std::vector<double> genes{0.25, -1.5, 3.75};
  EXPECT_EQ(hash_genes(genes, 1), hash_genes(genes, 1));
  EXPECT_NE(hash_genes(genes, 1), hash_genes(genes, 2));
  const std::vector<double> other{0.25, -1.5, 3.76};
  EXPECT_NE(hash_genes(genes, 1), hash_genes(other, 1));
}

}  // namespace
}  // namespace anadex::robust
