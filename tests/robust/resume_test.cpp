// Checkpoint/resume determinism at the algorithm level: a run interrupted
// at ANY snapshot and resumed from it must finish byte-identical to the
// uninterrupted run — same final population (genes, objectives, rank,
// crowding, all bit-exact via the v2 serialization), same front, same
// cumulative evaluation count.
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "moga/nsga2.hpp"
#include "moga/serialize.hpp"
#include "moga/spea2.hpp"
#include "problems/analytic.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::robust {
namespace {

std::string exact_bytes(const moga::Population& population) {
  std::ostringstream os;
  moga::save_population_exact(os, population);
  return os.str();
}

TEST(Resume, Nsga2ResumesBitIdenticallyFromEverySnapshot) {
  const auto problem = problems::make_sch();
  moga::Nsga2Params base;
  base.population_size = 16;
  base.generations = 12;
  base.seed = 5;
  const auto full = moga::run_nsga2(*problem, base);

  moga::Nsga2Params snapshotting = base;
  snapshotting.snapshot_every = 5;
  std::vector<moga::Nsga2State> states;
  snapshotting.on_snapshot = [&](const moga::Nsga2State& s) { states.push_back(s); };
  (void)moga::run_nsga2(*problem, snapshotting);
  ASSERT_EQ(states.size(), 2u);  // generations 5 and 10

  for (const auto& state : states) {
    moga::Nsga2Params resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = moga::run_nsga2(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.population), exact_bytes(full.population));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
    EXPECT_EQ(resumed.generations_run, full.generations_run);
  }
}

TEST(Resume, Spea2ResumesBitIdenticallyFromEverySnapshot) {
  const auto problem = problems::make_sch();
  moga::Spea2Params base;
  base.population_size = 16;
  base.archive_size = 12;
  base.generations = 12;
  base.seed = 5;
  const auto full = moga::run_spea2(*problem, base);

  moga::Spea2Params snapshotting = base;
  snapshotting.snapshot_every = 5;
  std::vector<moga::Spea2State> states;
  snapshotting.on_snapshot = [&](const moga::Spea2State& s) { states.push_back(s); };
  (void)moga::run_spea2(*problem, snapshotting);
  ASSERT_EQ(states.size(), 2u);  // generations 5 and 10

  for (const auto& state : states) {
    moga::Spea2Params resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = moga::run_spea2(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.archive), exact_bytes(full.archive));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
    EXPECT_EQ(resumed.generations_run, full.generations_run);
  }
}

TEST(Resume, LocalOnlyResumesBitIdenticallyFromEverySnapshot) {
  const auto problem = problems::make_sch();
  sacga::LocalOnlyParams base;
  base.population_size = 16;
  base.partitions = 4;
  base.axis_objective = 0;
  base.axis_lo = 0.0;
  base.axis_hi = 4.0;
  base.generations = 12;
  base.seed = 7;
  const auto full = sacga::run_local_only(*problem, base);

  sacga::LocalOnlyParams snapshotting = base;
  snapshotting.snapshot_every = 5;
  std::vector<sacga::LocalOnlyState> states;
  snapshotting.on_snapshot = [&](const sacga::LocalOnlyState& s) { states.push_back(s); };
  (void)sacga::run_local_only(*problem, snapshotting);
  ASSERT_FALSE(states.empty());

  for (const auto& state : states) {
    sacga::LocalOnlyParams resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = sacga::run_local_only(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.population), exact_bytes(full.population));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
  }
}

TEST(Resume, SacgaResumesBitIdenticallyAcrossBothPhases) {
  const auto problem = problems::make_sch();
  sacga::SacgaParams base;
  base.population_size = 16;
  base.partitions = 4;
  base.axis_objective = 0;
  base.axis_lo = 0.0;
  base.axis_hi = 4.0;
  base.phase1_max_generations = 6;
  base.span = 20;
  base.span_is_total_budget = true;
  base.seed = 3;
  const auto full = sacga::run_sacga(*problem, base);

  sacga::SacgaParams snapshotting = base;
  snapshotting.snapshot_every = 3;  // lands inside phase I and phase II
  std::vector<sacga::SacgaState> states;
  snapshotting.on_snapshot = [&](const sacga::SacgaState& s) { states.push_back(s); };
  (void)sacga::run_sacga(*problem, snapshotting);
  ASSERT_GE(states.size(), 3u);
  EXPECT_FALSE(states.front().phase1_done);  // earliest snapshot is mid-phase-I
  EXPECT_TRUE(states.back().phase1_done);

  for (const auto& state : states) {
    sacga::SacgaParams resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = sacga::run_sacga(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.population), exact_bytes(full.population));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
    EXPECT_EQ(resumed.generations_run, full.generations_run);
    EXPECT_EQ(resumed.phase1_generations, full.phase1_generations);
  }
}

TEST(Resume, MesacgaResumesBitIdenticallyAcrossPhaseBoundaries) {
  const auto problem = problems::make_sch();
  sacga::MesacgaParams base;
  base.population_size = 16;
  base.partition_schedule = {4, 2, 1};
  base.axis_objective = 0;
  base.axis_lo = 0.0;
  base.axis_hi = 4.0;
  base.phase1_max_generations = 4;
  base.span = 6;
  base.seed = 11;
  const auto full = sacga::run_mesacga(*problem, base);

  sacga::MesacgaParams snapshotting = base;
  // With gen_t = 4 and span 6, phase boundaries fall on generations 10, 16
  // and 22; every-2 snapshots hit phase interiors AND exact boundaries.
  snapshotting.snapshot_every = 2;
  std::vector<sacga::MesacgaState> states;
  snapshotting.on_snapshot = [&](const sacga::MesacgaState& s) { states.push_back(s); };
  (void)sacga::run_mesacga(*problem, snapshotting);
  ASSERT_GE(states.size(), 4u);

  for (const auto& state : states) {
    sacga::MesacgaParams resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = sacga::run_mesacga(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.population), exact_bytes(full.population));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
    EXPECT_EQ(resumed.generations_run, full.generations_run);
    ASSERT_EQ(resumed.phases.size(), full.phases.size());
    for (std::size_t p = 0; p < full.phases.size(); ++p) {
      EXPECT_EQ(resumed.phases[p].partitions, full.phases[p].partitions);
      EXPECT_EQ(exact_bytes(resumed.phases[p].front), exact_bytes(full.phases[p].front));
    }
  }
}

TEST(Resume, IslandGaResumesBitIdenticallyAcrossMigrations) {
  const auto problem = problems::make_sch();
  sacga::IslandParams base;
  base.islands = 2;
  base.island_population = 8;
  base.generations = 12;
  base.migration_interval = 4;
  base.migrants = 1;
  base.seed = 13;
  const auto full = sacga::run_island_ga(*problem, base);

  sacga::IslandParams snapshotting = base;
  snapshotting.snapshot_every = 5;  // gen 5 is mid-interval, gen 10 just after migration
  std::vector<sacga::IslandState> states;
  snapshotting.on_snapshot = [&](const sacga::IslandState& s) { states.push_back(s); };
  (void)sacga::run_island_ga(*problem, snapshotting);
  ASSERT_EQ(states.size(), 2u);

  for (const auto& state : states) {
    sacga::IslandParams resumed_params = base;
    resumed_params.resume = &state;
    const auto resumed = sacga::run_island_ga(*problem, resumed_params);
    EXPECT_EQ(exact_bytes(resumed.population), exact_bytes(full.population));
    EXPECT_EQ(exact_bytes(resumed.front), exact_bytes(full.front));
    EXPECT_EQ(resumed.evaluations, full.evaluations);
    EXPECT_EQ(resumed.migrations, full.migrations);
  }
}

}  // namespace
}  // namespace anadex::robust
