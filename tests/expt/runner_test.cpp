#include "expt/runner.hpp"

#include <gtest/gtest.h>

#include "expt/figures.hpp"
#include "problems/spec_suite.hpp"

#include <sstream>

namespace anadex::expt {
namespace {

/// A relaxed spec keeps short smoke runs cheap and feasible.
scint::Spec easy_spec() { return problems::spec_suite().front(); }

RunSettings smoke_settings(Algo algo) {
  RunSettings s;
  s.algo = algo;
  s.spec = easy_spec();
  s.population = 32;
  s.generations = 30;
  s.partitions = 4;
  s.mesacga_schedule = {4, 2, 1};
  s.phase1_cap = 10;
  s.seed = 9;
  return s;
}

TEST(AlgoName, AllNamed) {
  EXPECT_EQ(algo_name(Algo::TPG), "TPG(NSGA-II)");
  EXPECT_EQ(algo_name(Algo::LocalOnly), "LocalOnly");
  EXPECT_EQ(algo_name(Algo::SACGA), "SACGA");
  EXPECT_EQ(algo_name(Algo::MESACGA), "MESACGA");
}

TEST(FrontArea, OfSyntheticFront) {
  // Single design at (0.4 mW, 5 pF): staircase covers everything at 0.4 mW.
  const std::vector<FrontSample> front{{0.4e-3, 5e-12}};
  EXPECT_NEAR(front_area_of(front), 20.0, 1e-9);
}

TEST(Hypervolume, OfSyntheticFront) {
  // Point (0.2 mW, 5 pF) -> internal (0.2e-3, 0): dominated box
  // (1.2-0.2)mW x (5.1-0)pF over the 1.2 x 5.1 reference box.
  const std::vector<FrontSample> front{{0.2e-3, 5e-12}};
  EXPECT_NEAR(hypervolume_of(front), (1.0 * 5.1) / (1.2 * 5.1), 1e-9);
}

TEST(ToFrontSamples, MapsObjectivesToPhysicalUnits) {
  moga::Population pop(1);
  pop[0].eval.objectives = {0.5e-3, 2e-12};  // power, kLoadMax - cload
  const auto samples = to_front_samples(pop);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].power_w, 0.5e-3);
  EXPECT_DOUBLE_EQ(samples[0].cload_f, 3e-12);
}

TEST(Runner, SmokeRunsAllAlgorithms) {
  const problems::IntegratorProblem problem(easy_spec());
  for (Algo algo : {Algo::TPG, Algo::LocalOnly, Algo::SACGA, Algo::MESACGA}) {
    const auto outcome = run(problem, smoke_settings(algo));
    EXPECT_GT(outcome.evaluations, 0u) << algo_name(algo);
    EXPECT_GT(outcome.generations, 0u) << algo_name(algo);
    EXPECT_GT(outcome.seconds, 0.0) << algo_name(algo);
    EXPECT_GE(outcome.front_area, 0.0) << algo_name(algo);
    EXPECT_LE(outcome.front_area, 55.0 + 1e-9) << algo_name(algo);
    EXPECT_GE(outcome.hypervolume_norm, 0.0) << algo_name(algo);
    EXPECT_LE(outcome.hypervolume_norm, 1.0) << algo_name(algo);
  }
}

TEST(Runner, FrontSortedByLoad) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::SACGA));
  for (std::size_t i = 1; i < outcome.front.size(); ++i) {
    EXPECT_LE(outcome.front[i - 1].cload_f, outcome.front[i].cload_f);
  }
}

TEST(Runner, DeterministicOutcome) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto a = run(problem, smoke_settings(Algo::SACGA));
  const auto b = run(problem, smoke_settings(Algo::SACGA));
  EXPECT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.front_area, b.front_area);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Runner, HistoryRecordedAtStride) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings s = smoke_settings(Algo::TPG);
  s.record_history = true;
  s.history_stride = 10;
  const auto outcome = run(problem, s);
  ASSERT_EQ(outcome.history.size(), 3u);  // generations 10, 20, 30
  EXPECT_EQ(outcome.history[0].generation, 10u);
  EXPECT_EQ(outcome.history[2].generation, 30u);
}

TEST(Runner, MesacgaReportsPhaseMetrics) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::MESACGA));
  ASSERT_EQ(outcome.phases.size(), 3u);
  EXPECT_EQ(outcome.phases.front().partitions, 4u);
  EXPECT_EQ(outcome.phases.back().partitions, 1u);
}

TEST(Runner, ClusteringMetricWithinUnitRange) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::TPG));
  EXPECT_GE(outcome.clustering_4to5, 0.0);
  EXPECT_LE(outcome.clustering_4to5, 1.0);
}

TEST(Figures, FrontSeriesSortedWithPhysicalColumns) {
  const std::vector<FrontSample> front{{0.5e-3, 4e-12}, {0.2e-3, 1e-12}};
  const Series series = front_series("t", front);
  EXPECT_EQ(series.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(series.at(0, 0), 1.0);   // pF
  EXPECT_DOUBLE_EQ(series.at(0, 1), 0.2);   // mW
  EXPECT_DOUBLE_EQ(series.at(1, 0), 4.0);
}

TEST(Figures, PrintersEmitExpectedMarkers) {
  std::ostringstream os;
  print_banner(os, "Figure 5", "Pareto fronts");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);

  std::ostringstream os2;
  print_paper_vs_measured(os2, "ordering", "A>B", "A>B");
  EXPECT_NE(os2.str().find("[paper-vs-measured]"), std::string::npos);

  std::ostringstream os3;
  const std::vector<FrontSample> front{{0.5e-3, 4e-12}};
  print_fronts(os3, {{"demo", front}});
  EXPECT_NE(os3.str().find("Load Capacitance"), std::string::npos);
  EXPECT_NE(os3.str().find("demo"), std::string::npos);

  std::ostringstream os4;
  RunOutcome outcome;
  outcome.front = front;
  outcome.front_area = front_area_of(front);
  print_outcome_summary(os4, "demo", outcome);
  EXPECT_NE(os4.str().find("front_area"), std::string::npos);
}

}  // namespace
}  // namespace anadex::expt
