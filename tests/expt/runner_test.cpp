#include "expt/runner.hpp"

#include <gtest/gtest.h>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "expt/figures.hpp"
#include "problems/spec_suite.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace anadex::expt {
namespace {

/// A relaxed spec keeps short smoke runs cheap and feasible.
scint::Spec easy_spec() { return problems::spec_suite().front(); }

RunSettings smoke_settings(Algo algo) {
  RunSettings s;
  s.algo = algo;
  s.spec = easy_spec();
  s.population = 32;
  s.generations = 30;
  s.partitions = 4;
  s.mesacga_schedule = {4, 2, 1};
  s.phase1_cap = 10;
  s.seed = 9;
  return s;
}

TEST(AlgoName, AllNamed) {
  EXPECT_EQ(algo_name(Algo::TPG), "TPG(NSGA-II)");
  EXPECT_EQ(algo_name(Algo::LocalOnly), "LocalOnly");
  EXPECT_EQ(algo_name(Algo::SACGA), "SACGA");
  EXPECT_EQ(algo_name(Algo::MESACGA), "MESACGA");
}

TEST(FrontArea, OfSyntheticFront) {
  // Single design at (0.4 mW, 5 pF): staircase covers everything at 0.4 mW.
  const std::vector<FrontSample> front{{0.4e-3, 5e-12}};
  EXPECT_NEAR(front_area_of(front), 20.0, 1e-9);
}

TEST(Hypervolume, OfSyntheticFront) {
  // Point (0.2 mW, 5 pF) -> internal (0.2e-3, 0): dominated box
  // (1.2-0.2)mW x (5.1-0)pF over the 1.2 x 5.1 reference box.
  const std::vector<FrontSample> front{{0.2e-3, 5e-12}};
  EXPECT_NEAR(hypervolume_of(front), (1.0 * 5.1) / (1.2 * 5.1), 1e-9);
}

TEST(ToFrontSamples, MapsObjectivesToPhysicalUnits) {
  moga::Population pop(1);
  pop[0].eval.objectives = {0.5e-3, 2e-12};  // power, kLoadMax - cload
  const auto samples = to_front_samples(pop);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].power_w, 0.5e-3);
  EXPECT_DOUBLE_EQ(samples[0].cload_f, 3e-12);
}

TEST(Runner, SmokeRunsAllAlgorithms) {
  const problems::IntegratorProblem problem(easy_spec());
  for (Algo algo : {Algo::TPG, Algo::LocalOnly, Algo::SACGA, Algo::MESACGA}) {
    const auto outcome = run(problem, smoke_settings(algo));
    EXPECT_GT(outcome.evaluations, 0u) << algo_name(algo);
    EXPECT_GT(outcome.generations, 0u) << algo_name(algo);
    EXPECT_GT(outcome.seconds, 0.0) << algo_name(algo);
    EXPECT_GE(outcome.front_area, 0.0) << algo_name(algo);
    EXPECT_LE(outcome.front_area, 55.0 + 1e-9) << algo_name(algo);
    EXPECT_GE(outcome.hypervolume_norm, 0.0) << algo_name(algo);
    EXPECT_LE(outcome.hypervolume_norm, 1.0) << algo_name(algo);
  }
}

TEST(Runner, FrontSortedByLoad) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::SACGA));
  for (std::size_t i = 1; i < outcome.front.size(); ++i) {
    EXPECT_LE(outcome.front[i - 1].cload_f, outcome.front[i].cload_f);
  }
}

TEST(Runner, DeterministicOutcome) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto a = run(problem, smoke_settings(Algo::SACGA));
  const auto b = run(problem, smoke_settings(Algo::SACGA));
  EXPECT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.front_area, b.front_area);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Runner, BatchEvalModesProduceIdenticalFronts) {
  // --batch-eval is a pure execution knob: every algorithm must emit the
  // exact same front (bit-level doubles) whether batches run through the
  // scalar oracle, the SIMD lane kernels, or the Auto heuristic.
  const problems::IntegratorProblem problem(easy_spec());
  for (Algo algo : {Algo::TPG, Algo::SACGA, Algo::MESACGA, Algo::WeightedSum}) {
    RunSettings scalar = smoke_settings(algo);
    scalar.batch_eval = engine::BatchEval::Scalar;
    const auto reference = run(problem, scalar);
    for (const engine::BatchEval mode :
         {engine::BatchEval::Simd, engine::BatchEval::Auto}) {
      RunSettings s = smoke_settings(algo);
      s.batch_eval = mode;
      const auto outcome = run(problem, s);
      EXPECT_EQ(outcome.evaluations, reference.evaluations) << algo_name(algo);
      ASSERT_EQ(outcome.front.size(), reference.front.size()) << algo_name(algo);
      for (std::size_t i = 0; i < reference.front.size(); ++i) {
        EXPECT_EQ(outcome.front[i].power_w, reference.front[i].power_w)
            << algo_name(algo) << " item " << i;
        EXPECT_EQ(outcome.front[i].cload_f, reference.front[i].cload_f)
            << algo_name(algo) << " item " << i;
      }
    }
  }
}

TEST(Runner, CheckpointBytesIdenticalAcrossBatchEvalModes) {
  // The knob is excluded from the config digest, so a checkpoint written
  // under one mode must be byte-identical to one written under the other —
  // the property that lets a run checkpoint under SIMD and resume scalar.
  const problems::IntegratorProblem problem(easy_spec());
  const auto checkpoint_bytes = [&](engine::BatchEval mode, const std::string& tag) {
    RunSettings s = smoke_settings(Algo::SACGA);
    s.batch_eval = mode;
    s.checkpoint_path = testing::TempDir() + "anadex_mode_" + tag + ".cp";
    s.checkpoint_every = 16;
    (void)run(problem, s);
    std::ifstream in(s.checkpoint_path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(s.checkpoint_path.c_str());
    return buffer.str();
  };
  const std::string scalar = checkpoint_bytes(engine::BatchEval::Scalar, "scalar");
  const std::string simd = checkpoint_bytes(engine::BatchEval::Simd, "simd");
  ASSERT_FALSE(scalar.empty());
  EXPECT_EQ(scalar, simd);
}

TEST(Runner, CrossModeCheckpointResumeMatchesUninterruptedRun) {
  // Interrupt a scalar-mode run mid-flight, resume it in SIMD mode: the
  // finished front must equal an uninterrupted run of either mode.
  const problems::IntegratorProblem problem(easy_spec());
  const auto full = run(problem, smoke_settings(Algo::SACGA));

  CancelToken stop;
  RunSettings interrupted = smoke_settings(Algo::SACGA);
  interrupted.batch_eval = engine::BatchEval::Scalar;
  interrupted.checkpoint_path = testing::TempDir() + "anadex_xmode.cp";
  interrupted.checkpoint_every = 8;
  interrupted.checkpoint_keep = 2;
  interrupted.stop = &stop;
  interrupted.on_generation = [&stop](std::size_t gen, const moga::Population&) {
    if (gen + 1 == 13) stop.request();
  };
  const auto partial = run(problem, interrupted);
  EXPECT_TRUE(partial.interrupted);

  RunSettings resuming = smoke_settings(Algo::SACGA);
  resuming.batch_eval = engine::BatchEval::Simd;
  resuming.checkpoint_path = interrupted.checkpoint_path;
  resuming.checkpoint_every = 8;
  resuming.resume = ResumeMode::Auto;
  const auto resumed = run(problem, resuming);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.evaluations, full.evaluations);
  ASSERT_EQ(resumed.front.size(), full.front.size());
  for (std::size_t i = 0; i < full.front.size(); ++i) {
    EXPECT_EQ(resumed.front[i].power_w, full.front[i].power_w) << "item " << i;
    EXPECT_EQ(resumed.front[i].cload_f, full.front[i].cload_f) << "item " << i;
  }
  for (const char* suffix : {"", ".1"}) {
    std::remove((interrupted.checkpoint_path + suffix).c_str());
  }
}

TEST(Runner, HistoryRecordedAtStride) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings s = smoke_settings(Algo::TPG);
  s.record_history = true;
  s.history_stride = 10;
  const auto outcome = run(problem, s);
  ASSERT_EQ(outcome.history.size(), 3u);  // generations 10, 20, 30
  EXPECT_EQ(outcome.history[0].generation, 10u);
  EXPECT_EQ(outcome.history[2].generation, 30u);
}

TEST(Runner, MesacgaReportsPhaseMetrics) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::MESACGA));
  ASSERT_EQ(outcome.phases.size(), 3u);
  EXPECT_EQ(outcome.phases.front().partitions, 4u);
  EXPECT_EQ(outcome.phases.back().partitions, 1u);
}

TEST(Runner, ClusteringMetricWithinUnitRange) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::TPG));
  EXPECT_GE(outcome.clustering_4to5, 0.0);
  EXPECT_LE(outcome.clustering_4to5, 1.0);
}

TEST(Runner, ValidatesSettingsUpFront) {
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.population = 7;  // odd
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.population = 2;  // too small
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::SACGA);
    s.partitions = 0;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.generations = 0;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.record_history = true;
    s.history_stride = 0;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.record_history = false;
    s.history_stride = 0;  // irrelevant when no history is recorded
    EXPECT_NO_THROW(validate_run_settings(s));
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.threads = 257;  // above the sanity cap
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.threads = 0;  // 0 = auto is valid
    EXPECT_NO_THROW(validate_run_settings(s));
  }
  {
    RunSettings s = smoke_settings(Algo::MESACGA);
    s.mesacga_schedule = {};
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::MESACGA);
    s.mesacga_schedule = {4, 4, 1};  // not strictly decreasing
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::MESACGA);
    s.mesacga_schedule = {4, 2};  // does not end in 1
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::Island);
    s.islands = 1;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.checkpoint_path = "cp.txt";
    s.checkpoint_every = 0;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::WeightedSum);
    s.checkpoint_path = "cp.txt";  // unsupported algorithm
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.resume = ResumeMode::Strict;  // no checkpoint path
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  EXPECT_NO_THROW(validate_run_settings(smoke_settings(Algo::MESACGA)));
}

TEST(Runner, ValidationRejectsDegenerateGuardAndWatchdogSettings) {
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.guard.max_retries = 1001;  // runaway retry ladder
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.guard.penalty_objective = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.guard.penalty_violation = std::numeric_limits<double>::infinity();
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.guard.perturbation = 0.0;  // retries would re-evaluate identical genes
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
    s.guard.perturbation = -1e-6;
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
    s.guard.perturbation = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.guard.backoff_spin_base = std::size_t{1} << 40;  // years of spinning
    EXPECT_THROW(validate_run_settings(s), PreconditionError);
  }
  for (double deadline : {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity()}) {
    RunSettings s = smoke_settings(Algo::TPG);
    s.eval_deadline_s = deadline;
    EXPECT_THROW(validate_run_settings(s), PreconditionError) << deadline;
  }
  for (std::size_t keep : {std::size_t{0}, std::size_t{101}}) {
    RunSettings s = smoke_settings(Algo::TPG);
    s.checkpoint_keep = keep;
    EXPECT_THROW(validate_run_settings(s), PreconditionError) << keep;
  }
  {
    RunSettings s = smoke_settings(Algo::TPG);
    s.eval_deadline_s = 30.0;
    s.checkpoint_keep = 5;
    EXPECT_NO_THROW(validate_run_settings(s));
  }
}

TEST(Runner, StopTokenInterruptsAtTheBarrierAndResumeAutoFinishes) {
  const problems::IntegratorProblem problem(easy_spec());
  for (Algo algo : {Algo::TPG, Algo::SPEA2, Algo::LocalOnly, Algo::Island}) {
    const auto full = run(problem, smoke_settings(algo));

    CancelToken stop;
    RunSettings interrupted = smoke_settings(algo);
    interrupted.checkpoint_path =
        testing::TempDir() + "anadex_stop_" + algo_name(algo) + ".cp";
    interrupted.checkpoint_every = 16;
    interrupted.checkpoint_keep = 2;
    interrupted.stop = &stop;
    interrupted.on_generation = [&stop](std::size_t gen, const moga::Population&) {
      if (gen + 1 == 11) stop.request();  // off the snapshot cadence
    };
    const auto partial = run(problem, interrupted);
    EXPECT_TRUE(partial.interrupted) << algo_name(algo);
    EXPECT_LT(partial.generations, full.generations) << algo_name(algo);

    RunSettings resuming = smoke_settings(algo);
    resuming.checkpoint_path = interrupted.checkpoint_path;
    resuming.checkpoint_every = 16;
    resuming.resume = ResumeMode::Auto;
    const auto resumed = run(problem, resuming);
    EXPECT_FALSE(resumed.interrupted) << algo_name(algo);
    EXPECT_FALSE(resumed.resumed_from_path.empty()) << algo_name(algo);
    EXPECT_EQ(resumed.evaluations, full.evaluations) << algo_name(algo);
    ASSERT_EQ(resumed.front.size(), full.front.size()) << algo_name(algo);
    for (std::size_t i = 0; i < full.front.size(); ++i) {
      EXPECT_EQ(resumed.front[i].power_w, full.front[i].power_w) << algo_name(algo);
      EXPECT_EQ(resumed.front[i].cload_f, full.front[i].cload_f) << algo_name(algo);
    }
    for (const char* suffix : {"", ".1"}) {
      std::remove((interrupted.checkpoint_path + suffix).c_str());
    }
  }
}

TEST(Runner, ResumeAutoStartsFreshWithoutACheckpoint) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings s = smoke_settings(Algo::TPG);
  s.checkpoint_path = testing::TempDir() + "anadex_auto_fresh.cp";
  s.checkpoint_every = 16;
  s.resume = ResumeMode::Auto;
  std::remove(s.checkpoint_path.c_str());
  const auto outcome = run(problem, s);  // Strict would throw here
  EXPECT_EQ(outcome.resumed_from_generation, 0u);
  EXPECT_TRUE(outcome.resumed_from_path.empty());
  EXPECT_EQ(outcome.generations, smoke_settings(Algo::TPG).generations);
  std::remove(s.checkpoint_path.c_str());
}

TEST(Runner, CheckpointResumeReproducesUninterruptedRun) {
  const problems::IntegratorProblem problem(easy_spec());
  for (Algo algo : {Algo::TPG, Algo::SACGA, Algo::MESACGA}) {
    const auto full = run(problem, smoke_settings(algo));

    // 30 generations with a 16-generation cadence: the run finishes with
    // the checkpoint still parked at generation 16, simulating a kill
    // between snapshot and completion.
    RunSettings interrupted = smoke_settings(algo);
    interrupted.checkpoint_path =
        testing::TempDir() + "anadex_runner_" + algo_name(algo) + ".cp";
    interrupted.checkpoint_every = 16;
    (void)run(problem, interrupted);

    RunSettings resuming = interrupted;
    resuming.resume = ResumeMode::Strict;
    const auto resumed = run(problem, resuming);

    EXPECT_EQ(resumed.resumed_from_generation, 16u) << algo_name(algo);
    EXPECT_EQ(resumed.evaluations, full.evaluations) << algo_name(algo);
    EXPECT_EQ(resumed.generations, full.generations) << algo_name(algo);
    ASSERT_EQ(resumed.front.size(), full.front.size()) << algo_name(algo);
    for (std::size_t i = 0; i < full.front.size(); ++i) {
      EXPECT_EQ(resumed.front[i].power_w, full.front[i].power_w) << algo_name(algo);
      EXPECT_EQ(resumed.front[i].cload_f, full.front[i].cload_f) << algo_name(algo);
    }
    EXPECT_EQ(resumed.front_area, full.front_area) << algo_name(algo);
    std::remove(interrupted.checkpoint_path.c_str());
  }
}

TEST(Runner, HistorySurvivesCheckpointResume) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings base = smoke_settings(Algo::TPG);
  base.record_history = true;
  base.history_stride = 10;
  const auto full = run(problem, base);
  ASSERT_EQ(full.history.size(), 3u);

  RunSettings interrupted = base;
  interrupted.checkpoint_path = testing::TempDir() + "anadex_runner_history.cp";
  interrupted.checkpoint_every = 16;  // checkpoint carries the gen-10 sample
  (void)run(problem, interrupted);

  RunSettings resuming = interrupted;
  resuming.resume = ResumeMode::Strict;
  const auto resumed = run(problem, resuming);

  ASSERT_EQ(resumed.history.size(), full.history.size());
  for (std::size_t i = 0; i < full.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].generation, full.history[i].generation);
    EXPECT_EQ(resumed.history[i].front_area, full.history[i].front_area);
    EXPECT_EQ(resumed.history[i].front_size, full.history[i].front_size);
  }
  std::remove(interrupted.checkpoint_path.c_str());
}

TEST(Runner, ResumeRejectsMismatchedConfiguration) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings s = smoke_settings(Algo::TPG);
  s.checkpoint_path = testing::TempDir() + "anadex_runner_mismatch.cp";
  s.checkpoint_every = 16;
  (void)run(problem, s);

  RunSettings other = s;
  other.resume = ResumeMode::Strict;
  other.seed = s.seed + 1;  // different run identity
  EXPECT_THROW(run(problem, other), PreconditionError);

  RunSettings wrong_algo = s;
  wrong_algo.resume = ResumeMode::Strict;
  wrong_algo.algo = Algo::SACGA;  // meta.algo differs
  EXPECT_THROW(run(problem, wrong_algo), PreconditionError);

  std::remove(s.checkpoint_path.c_str());
}

TEST(Runner, FaultReportEmptyOnCleanProblem) {
  const problems::IntegratorProblem problem(easy_spec());
  const auto outcome = run(problem, smoke_settings(Algo::TPG));
  EXPECT_EQ(outcome.faults.total_faults(), 0u);
  EXPECT_EQ(outcome.resumed_from_generation, 0u);
}

TEST(Figures, FrontSeriesSortedWithPhysicalColumns) {
  const std::vector<FrontSample> front{{0.5e-3, 4e-12}, {0.2e-3, 1e-12}};
  const Series series = front_series("t", front);
  EXPECT_EQ(series.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(series.at(0, 0), 1.0);   // pF
  EXPECT_DOUBLE_EQ(series.at(0, 1), 0.2);   // mW
  EXPECT_DOUBLE_EQ(series.at(1, 0), 4.0);
}

TEST(Figures, PrintersEmitExpectedMarkers) {
  std::ostringstream os;
  print_banner(os, "Figure 5", "Pareto fronts");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);

  std::ostringstream os2;
  print_paper_vs_measured(os2, "ordering", "A>B", "A>B");
  EXPECT_NE(os2.str().find("[paper-vs-measured]"), std::string::npos);

  std::ostringstream os3;
  const std::vector<FrontSample> front{{0.5e-3, 4e-12}};
  print_fronts(os3, {{"demo", front}});
  EXPECT_NE(os3.str().find("Load Capacitance"), std::string::npos);
  EXPECT_NE(os3.str().find("demo"), std::string::npos);

  std::ostringstream os4;
  RunOutcome outcome;
  outcome.front = front;
  outcome.front_area = front_area_of(front);
  print_outcome_summary(os4, "demo", outcome);
  EXPECT_NE(os4.str().find("front_area"), std::string::npos);
}

}  // namespace
}  // namespace anadex::expt
