#include "expt/surface_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::expt {
namespace {

std::vector<FrontSample> staircase() {
  return {{0.1e-3, 1e-12}, {0.2e-3, 2e-12}, {0.4e-3, 4e-12}};
}

TEST(SurfaceModel, RequiresNonEmptyFront) {
  EXPECT_THROW(SurfaceModel({}), PreconditionError);
}

TEST(SurfaceModel, KeepsSortedNondominatedPoints) {
  // Shuffled input with one dominated point (0.5 mW @ 3 pF is beaten by
  // 0.4 mW @ 4 pF).
  std::vector<FrontSample> front{{0.4e-3, 4e-12}, {0.1e-3, 1e-12},
                                 {0.5e-3, 3e-12}, {0.2e-3, 2e-12}};
  const SurfaceModel model(front);
  EXPECT_EQ(model.size(), 3u);
  EXPECT_DOUBLE_EQ(model.min_load(), 1e-12);
  EXPECT_DOUBLE_EQ(model.max_load(), 4e-12);
  for (std::size_t i = 1; i < model.points().size(); ++i) {
    EXPECT_GT(model.points()[i].cload_f, model.points()[i - 1].cload_f);
    EXPECT_GT(model.points()[i].power_w, model.points()[i - 1].power_w);
  }
}

TEST(SurfaceModel, PowerAtPicksCheapestCoveringDesign) {
  const SurfaceModel model(staircase());
  EXPECT_DOUBLE_EQ(model.power_at(0.5e-12).value(), 0.1e-3);
  EXPECT_DOUBLE_EQ(model.power_at(1e-12).value(), 0.1e-3);   // exact hit
  EXPECT_DOUBLE_EQ(model.power_at(1.5e-12).value(), 0.2e-3); // next step up
  EXPECT_DOUBLE_EQ(model.power_at(4e-12).value(), 0.4e-3);
}

TEST(SurfaceModel, PowerAtBeyondCoverageIsEmpty) {
  const SurfaceModel model(staircase());
  EXPECT_FALSE(model.power_at(4.5e-12).has_value());
}

TEST(SurfaceModel, InterpolationBetweenPoints) {
  const SurfaceModel model(staircase());
  // Midway between (2 pF, 0.2 mW) and (4 pF, 0.4 mW).
  EXPECT_NEAR(model.power_interpolated(3e-12).value(), 0.3e-3, 1e-12);
  // Below coverage clamps to the cheapest design.
  EXPECT_DOUBLE_EQ(model.power_interpolated(0.2e-12).value(), 0.1e-3);
  EXPECT_FALSE(model.power_interpolated(9e-12).has_value());
}

TEST(SurfaceModel, MarginalPowerIsTheLocalSlope) {
  const SurfaceModel model(staircase());
  // Between 1 and 2 pF: (0.2-0.1)mW / 1pF = 1e8 W/F.
  EXPECT_NEAR(model.marginal_power(1.5e-12).value(), 1e8, 1.0);
  // Between 2 and 4 pF: 0.2e-3 / 2e-12 = 1e8 W/F too; use asymmetric data.
  const SurfaceModel steep({{0.1e-3, 1e-12}, {0.5e-3, 2e-12}});
  EXPECT_NEAR(steep.marginal_power(1.5e-12).value(), 4e8, 1.0);
}

TEST(SurfaceModel, MarginalPowerUndefinedOutsideOrDegenerate) {
  const SurfaceModel model(staircase());
  EXPECT_FALSE(model.marginal_power(0.5e-12).has_value());
  EXPECT_FALSE(model.marginal_power(5e-12).has_value());
  const SurfaceModel single({{0.1e-3, 1e-12}});
  EXPECT_FALSE(single.marginal_power(1e-12).has_value());
}

TEST(SurfaceModel, SinglePointModel) {
  const SurfaceModel model({{0.3e-3, 2e-12}});
  EXPECT_DOUBLE_EQ(model.power_at(1e-12).value(), 0.3e-3);
  EXPECT_FALSE(model.power_at(3e-12).has_value());
  EXPECT_DOUBLE_EQ(model.power_interpolated(2e-12).value(), 0.3e-3);
}

TEST(SurfaceModel, DuplicateLoadsKeepCheapest) {
  const SurfaceModel model({{0.3e-3, 2e-12}, {0.2e-3, 2e-12}});
  EXPECT_EQ(model.size(), 1u);
  EXPECT_DOUBLE_EQ(model.power_at(2e-12).value(), 0.2e-3);
}

}  // namespace
}  // namespace anadex::expt
