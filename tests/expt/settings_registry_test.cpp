// The digest-perturbation property test over the settings registry
// (src/expt/settings_registry.hpp) — the runtime half of the
// digest-coverage contract (`anadex-lint --digest-audit` is the static
// half):
//
//   * every DIGEST-registered field, when perturbed, must CHANGE
//     run_config_digest (a field the digest misses would let a resume
//     silently continue under different result-bearing configuration);
//   * every META field must change its CheckpointMeta slot while leaving
//     the digest alone (meta is compared field-by-field on resume);
//   * every KNOB and SEAM field must leave BOTH the digest and the meta
//     unchanged (checkpoint under one knob value, resume under another).
//
// The perturbation table below must cover every registry row: a field
// added to the registry without a perturbation here fails the test, so
// "add one registry line" forcibly includes deciding how to prove the
// field's class.
#include "expt/settings_registry.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>

#include "common/cancel.hpp"
#include "expt/runner.hpp"
#include "robust/checkpoint.hpp"

namespace anadex::expt {
namespace {

/// The resume-compared CheckpointMeta slots for `s` (without the config
/// digest, which is tracked separately).
struct MetaFields {
  std::string algo;
  std::uint64_t seed;
  std::size_t population;
  std::size_t generations;
  bool operator==(const MetaFields&) const = default;
};

MetaFields meta_of(const RunSettings& s) {
  return {algo_name(s.algo), s.seed, s.population, s.generations};
}

using Perturb = std::function<void(RunSettings&)>;

/// One perturbation per registry row. Every mutation must produce a value
/// VALID under validate_run_settings yet different from the baseline.
std::map<std::string, Perturb> perturbations() {
  static CancelToken stop_token;
  std::map<std::string, Perturb> p;
  // META
  p["algo"] = [](RunSettings& s) { s.algo = Algo::SACGA; };
  p["seed"] = [](RunSettings& s) { s.seed = 9001; };
  p["population"] = [](RunSettings& s) { s.population += 4; };
  p["generations"] = [](RunSettings& s) { s.generations += 7; };
  // DIGEST
  p["spec"] = [](RunSettings& s) { s.spec.dr_min_db += 1.0; };
  p["partitions"] = [](RunSettings& s) { s.partitions += 1; };
  p["islands"] = [](RunSettings& s) { s.islands += 1; };
  p["migration_interval"] = [](RunSettings& s) { s.migration_interval += 5; };
  p["weight_count"] = [](RunSettings& s) { s.weight_count += 1; };
  p["mesacga_schedule"] = [](RunSettings& s) { s.mesacga_schedule = {7, 3, 1}; };
  p["phase1_cap"] = [](RunSettings& s) { s.phase1_cap += 10; };
  p["span"] = [](RunSettings& s) { s.span = 12; };
  p["history_stride"] = [](RunSettings& s) { s.history_stride += 1; };
  p["record_history"] = [](RunSettings& s) { s.record_history = true; };
  p["guard"] = [](RunSettings& s) { s.guard.max_retries += 1; };
  p["fault_injection"] = [](RunSettings& s) {
    robust::FaultInjectionConfig cfg;
    cfg.exception_rate = 0.01;
    s.fault_injection = cfg;
  };
  // KNOB — results byte-identical for every value, so never digested.
  p["threads"] = [](RunSettings& s) { s.threads = 3; };
  p["eval_cache"] = [](RunSettings& s) { s.eval_cache = 64; };
  p["engine"] = [](RunSettings& s) { s.engine.context = 42; };
  p["batch_eval"] = [](RunSettings& s) {
    s.batch_eval = engine::BatchEval::Simd;
  };
  p["shards"] = [](RunSettings& s) { s.shards = 2; };
  p["shard_dir"] = [](RunSettings& s) { s.shard_dir = "spool.d"; };
  p["checkpoint_path"] = [](RunSettings& s) { s.checkpoint_path = "c.ckpt"; };
  p["checkpoint_every"] = [](RunSettings& s) { s.checkpoint_every += 1; };
  p["resume"] = [](RunSettings& s) { s.resume = ResumeMode::Auto; };
  p["checkpoint_keep"] = [](RunSettings& s) { s.checkpoint_keep = 3; };
  p["eval_deadline_s"] = [](RunSettings& s) { s.eval_deadline_s = 30.0; };
  p["trace_path"] = [](RunSettings& s) { s.trace_path = "t.jsonl"; };
  p["trace_level"] = [](RunSettings& s) {
    s.trace_level = obs::TraceLevel::Eval;
  };
  p["trace_append"] = [](RunSettings& s) { s.trace_append = true; };
  // SEAM — runtime wiring, never serialized anywhere.
  p["checkpoint_write_hook"] = [](RunSettings& s) {
    s.checkpoint_write_hook = [](robust::CheckpointWritePhase,
                                 const std::string&) {};
  };
  p["stop"] = [](RunSettings& s) { s.stop = &stop_token; };
  p["on_generation"] = [](RunSettings& s) {
    s.on_generation = [](std::size_t, const moga::Population&) {};
  };
  return p;
}

TEST(SettingsRegistry, EveryRegisteredFieldBehavesPerItsClass) {
  const RunSettings baseline;
  const std::string base_digest = run_config_digest(baseline);
  const MetaFields base_meta = meta_of(baseline);
  const auto table = perturbations();

  for (const auto& row : kSettingsRegistry) {
    const std::string field(row.field);
    const auto it = table.find(field);
    ASSERT_NE(it, table.end())
        << "registry row '" << field << "' has no perturbation — every "
        << "registered field needs one so its class stays proven";

    RunSettings s;
    it->second(s);
    const std::string digest = run_config_digest(s);
    const MetaFields meta = meta_of(s);

    switch (row.kind) {
      case SettingKind::Digest:
        EXPECT_NE(digest, base_digest)
            << "DIGEST field '" << field << "' perturbed but the config "
            << "digest did not change — a resume would silently continue "
            << "under different result-bearing configuration";
        break;
      case SettingKind::Meta:
        EXPECT_EQ(digest, base_digest)
            << "META field '" << field << "' leaked into the digest";
        EXPECT_NE(meta, base_meta)
            << "META field '" << field << "' perturbed but no "
            << "CheckpointMeta slot changed";
        break;
      case SettingKind::Knob:
      case SettingKind::Seam:
        EXPECT_EQ(digest, base_digest)
            << setting_kind_name(row.kind) << " field '" << field
            << "' changed the digest — knobs/seams must be resumable "
            << "across values; if this field now affects results, "
            << "reclassify it DIGEST in the registry";
        EXPECT_EQ(meta, base_meta)
            << setting_kind_name(row.kind) << " field '" << field
            << "' changed checkpoint meta";
        break;
    }
  }
}

TEST(SettingsRegistry, PerturbationTableHasNoStaleEntries) {
  auto table = perturbations();
  for (const auto& row : kSettingsRegistry) table.erase(std::string(row.field));
  EXPECT_TRUE(table.empty())
      << "perturbation for '" << table.begin()->first
      << "' matches no registry row (field removed or renamed?)";
}

TEST(SettingsRegistry, RegistryNamesAndDigestTagsAreUnique) {
  std::map<std::string, int> fields;
  std::map<std::string, int> tags;
  for (const auto& row : kSettingsRegistry) {
    fields[std::string(row.field)]++;
    if (!row.digest_tag.empty()) tags[std::string(row.digest_tag)]++;
  }
  for (const auto& [name, n] : fields)
    EXPECT_EQ(n, 1) << "field '" << name << "' registered " << n << " times";
  for (const auto& [tag, n] : tags)
    EXPECT_EQ(n, 1) << "digest tag '" << tag << "' used " << n << " times";
}

// Pins the digest WIRE FORMAT of default settings. This string is stored
// in checkpoint meta: changing it (reordering registry rows, renaming a
// tag, adding a DIGEST row) invalidates every existing checkpoint chain —
// which may be the right call, but must be a deliberate one. Update the
// golden only together with a note in docs/robustness.md.
TEST(SettingsRegistry, GoldenDefaultDigest) {
  const RunSettings defaults;
  const std::string digest = run_config_digest(defaults);
  EXPECT_EQ(digest,
            "spec=default,0x1.8p+6,0x1.6666666666666p+0,0x1.01b2b29a4692bp-22,"
            "0x1.6f0068db8bac7p-11,0x1.b333333333333p-1,0x1.5798ee2308c3ap-24,"
            "0x1.3333333333333p-2,0x1.999999999999ap-4"
            " partitions=8 islands=4 migration=25 weights=16"
            " schedule=20,13,8,5,3,2,1 phase1_cap=200 span=0 stride=25"
            " history=0 guard=2,0x1.0c6f7a0b5ed8dp-20,0x1.dcd65p+29,"
            "0x1.dcd65p+29,11400714819323198485");
}

}  // namespace
}  // namespace anadex::expt
