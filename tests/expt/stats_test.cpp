#include "expt/stats.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::expt {
namespace {

TEST(Summary, SingleValue) {
  const std::vector<double> v{3.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 3.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(Summary, KnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Summary, EmptyRejected) {
  EXPECT_THROW(summarize(std::vector<double>{}), PreconditionError);
}

TEST(MultiSeed, AggregatesRequestedSeedCount) {
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  RunSettings settings;
  settings.algo = Algo::SACGA;
  settings.spec = problems::spec_suite().front();
  settings.population = 32;
  settings.generations = 25;
  settings.partitions = 4;
  settings.phase1_cap = 8;
  const auto outcome = run_seeds(problem, settings, 3);
  EXPECT_EQ(outcome.runs.size(), 3u);
  EXPECT_EQ(outcome.front_area.count, 3u);
  EXPECT_GE(outcome.front_area.min, 0.0);
  EXPECT_LE(outcome.front_area.min, outcome.front_area.mean);
  EXPECT_LE(outcome.front_area.mean, outcome.front_area.max);
}

TEST(MultiSeed, SeedsActuallyDiffer) {
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  RunSettings settings;
  settings.algo = Algo::TPG;
  settings.spec = problems::spec_suite().front();
  settings.population = 32;
  settings.generations = 25;
  const auto outcome = run_seeds(problem, settings, 3);
  // At least two of the three runs should differ in some metric.
  const bool all_equal = outcome.front_area.min == outcome.front_area.max &&
                         outcome.load_span_pf.min == outcome.load_span_pf.max;
  EXPECT_FALSE(all_equal);
}

TEST(PairwiseWinRate, CountsStrictWins) {
  MultiSeedOutcome a;
  MultiSeedOutcome b;
  for (double area : {1.0, 3.0, 2.0}) {
    RunOutcome r;
    r.front_area = area;
    a.runs.push_back(r);
  }
  for (double area : {2.0, 2.0, 2.0}) {
    RunOutcome r;
    r.front_area = area;
    b.runs.push_back(r);
  }
  EXPECT_NEAR(pairwise_win_rate(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pairwise_win_rate(b, a), 1.0 / 3.0, 1e-12);
}

TEST(PairwiseWinRate, SizeMismatchRejected) {
  MultiSeedOutcome a;
  MultiSeedOutcome b;
  a.runs.emplace_back();
  EXPECT_THROW(pairwise_win_rate(a, b), PreconditionError);
}

TEST(Wilcoxon, Validation) {
  EXPECT_THROW(wilcoxon_signed_rank(std::vector<double>{}, std::vector<double>{}),
               PreconditionError);
  EXPECT_THROW(wilcoxon_signed_rank(std::vector{1.0}, std::vector{1.0, 2.0}),
               PreconditionError);
  EXPECT_THROW(wilcoxon_signed_rank(std::vector{1.0, 2.0}, std::vector{1.0, 2.0}),
               PreconditionError);  // all differences zero
}

TEST(Wilcoxon, ClearlySmallerSampleScoresOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{5.0, 6.0, 7.0};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(a, b), 1.0);
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(b, a), 0.0);
}

TEST(Wilcoxon, BalancedDifferencesNearHalf) {
  const std::vector<double> a{1.0, 5.0, 2.0, 6.0};
  const std::vector<double> b{2.0, 4.0, 3.0, 5.0};  // +1, -1, +1, -1
  EXPECT_NEAR(wilcoxon_signed_rank(a, b), 0.5, 1e-12);
}

TEST(Wilcoxon, WinningTheLargeDifferencesWeighsMore) {
  // a wins the two big comparisons and loses the two tiny ones: the rank
  // weighting must put W+ above 0.5 (ranks 3+4 vs 1+2 -> 0.7).
  const std::vector<double> a{0.0, 0.0, 3.0, 3.05};
  const std::vector<double> b{5.0, 6.0, 2.9, 3.0};
  EXPECT_NEAR(wilcoxon_signed_rank(a, b), 0.7, 1e-12);
}

TEST(Wilcoxon, ZeroDifferencesDropped) {
  const std::vector<double> a{1.0, 3.0, 3.0};
  const std::vector<double> b{1.0, 4.0, 4.0};  // one tie, two positive
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(a, b), 1.0);
}

}  // namespace
}  // namespace anadex::expt
