// expt::Job lifecycle: slicing, resume chaining, cancellation, failure —
// and the core contract that a job cut into slices reproduces a solo run
// byte-for-byte.
#include "expt/job.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::expt {
namespace {

scint::Spec easy_spec() { return problems::spec_suite().front(); }

RunSettings small_settings() {
  RunSettings s;
  s.algo = Algo::TPG;
  s.spec = easy_spec();
  s.population = 16;
  s.generations = 24;
  s.seed = 11;
  return s;
}

bool same_front(const std::vector<FrontSample>& a, const std::vector<FrontSample>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(FrontSample)) == 0;
}

TEST(JobState, AllNamed) {
  EXPECT_EQ(job_state_name(JobState::Pending), "pending");
  EXPECT_EQ(job_state_name(JobState::Running), "running");
  EXPECT_EQ(job_state_name(JobState::Snapshotted), "snapshotted");
  EXPECT_EQ(job_state_name(JobState::Done), "done");
  EXPECT_EQ(job_state_name(JobState::Failed), "failed");
  EXPECT_EQ(job_state_name(JobState::Cancelled), "cancelled");
}

TEST(Job, RunMatchesFreeFunction) {
  const RunSettings settings = small_settings();
  const RunOutcome direct = run(settings);

  Job job = Job::from_settings(settings);
  EXPECT_EQ(job.state(), JobState::Pending);
  EXPECT_TRUE(job.runnable());
  const RunOutcome via_job = job.run();
  EXPECT_EQ(job.state(), JobState::Done);
  EXPECT_EQ(job.slices_run(), 1u);
  EXPECT_FALSE(job.runnable());

  EXPECT_TRUE(same_front(direct.front, via_job.front));
  EXPECT_EQ(direct.evaluations, via_job.evaluations);
  EXPECT_EQ(direct.generations, via_job.generations);
}

TEST(Job, AdmissionRejectsInvalidSettings) {
  RunSettings settings = small_settings();
  settings.population = 3;  // must be even and >= 4
  EXPECT_THROW(Job::from_settings(settings), PreconditionError);

  const problems::IntegratorProblem problem(easy_spec());
  EXPECT_THROW(Job(problem, settings), PreconditionError);
}

TEST(Job, SlicedRunIsByteIdenticalToSoloRun) {
  const std::string dir = testing::TempDir();
  RunSettings solo = small_settings();
  solo.checkpoint_path = dir + "anadex_job_solo.cp";
  solo.checkpoint_every = 8;
  std::filesystem::remove(solo.checkpoint_path);
  const RunOutcome whole = run(solo);

  RunSettings sliced = solo;
  sliced.checkpoint_path = dir + "anadex_job_sliced.cp";
  std::filesystem::remove(sliced.checkpoint_path);
  Job job = Job::from_settings(sliced);
  ASSERT_TRUE(job.preemptible());
  // 24 generations in 5-generation slices: 4 preemptions, then completion.
  std::size_t slices = 0;
  while (job.state() != JobState::Done) {
    const JobState state = job.run_slice(5);
    ASSERT_TRUE(state == JobState::Snapshotted || state == JobState::Done);
    ++slices;
    ASSERT_LE(slices, 10u) << "job did not converge to Done";
  }
  EXPECT_EQ(slices, 5u);
  EXPECT_EQ(job.slices_run(), 5u);
  EXPECT_EQ(job.generations_done(), solo.generations);

  EXPECT_TRUE(same_front(whole.front, job.outcome().front));
  EXPECT_EQ(whole.evaluations, job.outcome().evaluations);
  EXPECT_EQ(whole.front_area, job.outcome().front_area);
}

TEST(Job, NonPreemptibleJobIgnoresBudget) {
  // No checkpoint path -> nothing to resume from, so a budget would strand
  // the job; run_slice runs it to completion instead.
  Job job = Job::from_settings(small_settings());
  EXPECT_FALSE(job.preemptible());
  EXPECT_EQ(job.run_slice(5), JobState::Done);
  EXPECT_EQ(job.generations_done(), small_settings().generations);
}

TEST(Job, CancelBeforeFirstSliceIsImmediate) {
  Job job = Job::from_settings(small_settings());
  job.cancel();
  EXPECT_EQ(job.state(), JobState::Cancelled);
  EXPECT_THROW(job.run_slice(5), PreconditionError);
  job.cancel();  // terminal: no-op
  EXPECT_EQ(job.state(), JobState::Cancelled);
}

TEST(Job, CancelWhileSnapshottedIsImmediate) {
  RunSettings settings = small_settings();
  settings.checkpoint_path = testing::TempDir() + "anadex_job_cancel.cp";
  settings.checkpoint_every = 8;
  std::filesystem::remove(settings.checkpoint_path);
  Job job = Job::from_settings(settings);
  ASSERT_EQ(job.run_slice(5), JobState::Snapshotted);
  EXPECT_TRUE(job.runnable());
  job.cancel();
  EXPECT_EQ(job.state(), JobState::Cancelled);
  EXPECT_FALSE(job.runnable());
}

TEST(Job, CancelDuringRunEndsCancelled) {
  const problems::IntegratorProblem problem(easy_spec());
  RunSettings settings = small_settings();
  settings.checkpoint_path = testing::TempDir() + "anadex_job_runcancel.cp";
  settings.checkpoint_every = 8;
  std::filesystem::remove(settings.checkpoint_path);
  Job* handle = nullptr;
  settings.on_generation = [&handle](std::size_t gen, const moga::Population&) {
    if (gen == 4 && handle != nullptr) handle->cancel();
  };
  Job job(problem, settings);
  handle = &job;
  EXPECT_EQ(job.run_slice(0), JobState::Cancelled);
  EXPECT_LT(job.generations_done(), settings.generations);
}

TEST(Job, StopWithoutCheckpointIsNotResumable) {
  CancelToken stop;
  RunSettings settings = small_settings();
  settings.stop = &stop;
  settings.on_generation = [&stop](std::size_t gen, const moga::Population&) {
    if (gen == 4) stop.request();
  };
  Job job = Job::from_settings(settings);
  EXPECT_EQ(job.run_slice(0), JobState::Snapshotted);
  EXPECT_FALSE(job.runnable());
  EXPECT_THROW(job.run_slice(0), PreconditionError);
}

TEST(Job, FailedSliceStoresErrorAndRunRethrows) {
  RunSettings settings = small_settings();
  settings.checkpoint_path =
      testing::TempDir() + "anadex_job_missing_does_not_exist.cp";
  std::filesystem::remove(settings.checkpoint_path);
  settings.resume = ResumeMode::Strict;  // missing file -> run_impl throws
  Job job = Job::from_settings(settings);
  EXPECT_EQ(job.run_slice(5), JobState::Failed);
  EXPECT_FALSE(job.error().empty());
  EXPECT_FALSE(job.runnable());

  Job again = Job::from_settings(settings);
  EXPECT_THROW(again.run(), std::exception);
}

}  // namespace
}  // namespace anadex::expt
