// Figure 11 — "Comparison of MESACGA performance with best SACGA
// performance": a 1250-iteration MESACGA (pure-local phase of 200
// iterations + 7 phases of 150) against the best static-partition SACGA
// (16 partitions, 1200 iterations). Paper metrics: 21.83 (MESACGA) vs
// 22.19 (SACGA) — comparable, slight edge to MESACGA, without having had
// to search for the optimal partition count.
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 11",
                     "MESACGA (200 + 7x150) vs best SACGA (m=16, 1200 iterations)");

  const problems::IntegratorProblem problem(problems::chosen_spec());

  auto mesacga_settings = bench::chosen_settings(expt::Algo::MESACGA, 0);
  mesacga_settings.span = bench::scaled(150);
  mesacga_settings.phase1_cap = bench::scaled(200);
  const auto mesacga = expt::run(problem, mesacga_settings);

  auto sacga_settings = bench::chosen_settings(expt::Algo::SACGA, 1200);
  sacga_settings.partitions = 16;
  const auto sacga = expt::run(problem, sacga_settings);

  // GA runs are noisy; back the comparison with a 3-seed mean.
  constexpr int kSeeds = 3;
  double mesacga_mean = 0.0;
  double sacga_mean = 0.0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    mesacga_settings.seed = static_cast<std::uint64_t>(seed);
    sacga_settings.seed = static_cast<std::uint64_t>(seed);
    mesacga_mean += expt::run(problem, mesacga_settings).front_area / kSeeds;
    sacga_mean += expt::run(problem, sacga_settings).front_area / kSeeds;
  }

  expt::print_fronts(std::cout, {{"MESACGA", mesacga.front},
                                 {"SACGA with 16 partitions", sacga.front}});
  expt::print_outcome_summary(std::cout, "MESACGA", mesacga);
  expt::print_outcome_summary(std::cout, "SACGA m=16", sacga);

  expt::print_paper_vs_measured(
      std::cout, "metric comparison (paper units differ; shape matters)",
      "MESACGA 21.83 vs best SACGA 22.19 (within ~2 %, MESACGA ahead)",
      "3-seed means: MESACGA " + std::to_string(mesacga_mean) + " vs SACGA " +
          std::to_string(sacga_mean) +
          (mesacga_mean <= sacga_mean * 1.05 ? "  [comparable-or-better holds]"
                                             : "  [DEVIATES]"));
  expt::print_paper_vs_measured(
      std::cout, "practical conclusion",
      "MESACGA matches the best hand-tuned partition count without the sweep",
      "no per-problem partition search was performed for the MESACGA run");
  return 0;
}
