// Extension bench — closing the paper's motivating loop at system level.
//
// §1/§2: the point of extracting the integrator's optimal design surface is
// to make good subsystem-level decisions for a fourth-order sigma-delta
// modulator. This bench (i) explores the surface with MESACGA, (ii) budgets
// the four modulator stages from it, (iii) maps each picked design's
// circuit non-idealities (finite gain, settling error) into the behavioral
// modulator simulator, and (iv) verifies the simulated in-band SNDR against
// the ideal noise-shaping formula.
#include <iostream>

#include "bench_util.hpp"
#include "sacga/mesacga.hpp"
#include "sysdes/modulator_sim.hpp"
#include "sysdes/sigma_delta.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "System validation",
                     "4th-order sigma-delta built from Pareto-surface designs");

  const problems::IntegratorProblem problem(problems::chosen_spec());

  sacga::MesacgaParams params;
  params.population_size = 100;
  params.axis_objective = 1;
  params.axis_lo = 0.0;
  params.axis_hi = problems::kLoadMax;
  params.total_budget = bench::scaled(bench::kPaperBudget);
  params.phase1_max_generations = params.total_budget / 4;
  params.seed = bench::kSeed;
  const auto result = sacga::run_mesacga(problem, params);
  std::cout << "design surface: " << result.front.size() << " feasible designs\n";

  sysdes::ModulatorSpec mod;  // order 4, OSR 128
  const auto loads = sysdes::default_stage_loads(mod);
  auto stages = sysdes::ideal_stages(mod.order);

  // For each stage pick the cheapest front design able to drive its load,
  // then inject that design's non-idealities into the stage model.
  double total_power = 0.0;
  bool covered = true;
  for (std::size_t s = 0; s < loads.size(); ++s) {
    const moga::Individual* pick = nullptr;
    for (const auto& ind : result.front) {
      const double cload = problems::kLoadMax - ind.eval.objectives[1];
      if (cload < loads[s]) continue;
      if (pick == nullptr || ind.eval.objectives[0] < pick->eval.objectives[0]) {
        pick = &ind;
      }
    }
    if (pick == nullptr) {
      std::cout << "  stage " << s + 1 << ": NOT covered by the surface\n";
      covered = false;
      continue;
    }
    const auto design = problems::IntegratorProblem::decode(pick->genes);
    const auto perf = problem.typical_performance(design);
    stages[s] = sysdes::StageModel::from_performance(perf, stages[s].coefficient);
    total_power += perf.power;
    std::cout << "  stage " << s + 1 << ": drives " << loads[s] * 1e12 << " pF with "
              << perf.power * 1e3 << " mW (A0*beta="
              << perf.opamp.a0 * perf.feedback_factor << ", SE=" << perf.settling_error
              << ")\n";
  }

  sysdes::SimulationConfig config;
  config.osr = mod.osr;
  config.samples = 1 << 14;
  const auto ideal = sysdes::simulate_modulator(sysdes::ideal_stages(mod.order), config);
  const auto real = sysdes::simulate_modulator(stages, config);

  std::cout << "\n  ideal integrators:   SNDR " << ideal.sndr_db << " dB ("
            << (ideal.stable ? "stable" : "UNSTABLE") << ")\n";
  std::cout << "  circuit-backed:      SNDR " << real.sndr_db << " dB ("
            << (real.stable ? "stable" : "UNSTABLE") << ")\n";
  std::cout << "  analog power total:  " << total_power * 1e3 << " mW"
            << (covered ? "" : " (incomplete coverage!)") << "\n";

  expt::print_paper_vs_measured(
      std::cout, "surface-driven subsystem design (the paper's §1 motivation)",
      "optimal design surfaces enable parasitic-aware system decisions",
      std::string(covered ? "all four stages covered" : "coverage gap") +
          ", circuit-backed SNDR within " +
          std::to_string(ideal.sndr_db - real.sndr_db) + " dB of ideal");
  return 0;
}
