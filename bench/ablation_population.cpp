// Ablation: the paper's §3 third observation — "Clustering effect can be
// reduced by increasing population size considerably, but this increases
// the computational cost also." NSGA-II swept over population size at a
// fixed generation budget, reporting the clustering fraction, covered load
// span and wall-clock cost; an equal-evaluation SACGA row shows the paper's
// alternative.
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "common/series.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Ablation B",
                     "NSGA-II clustering vs population size (800 generations)");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  Series series("clustering vs population size",
                {"population", "cluster_4to5", "load_span_pF", "front_area", "seconds"});

  constexpr int kSeeds = 2;  // average out single-run GA noise
  for (std::size_t pop : {50u, 100u, 200u, 400u}) {
    double cluster = 0.0;
    double span = 0.0;
    double area = 0.0;
    double seconds = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto settings = bench::chosen_settings(expt::Algo::TPG, bench::kPaperBudget);
      settings.population = pop;
      settings.seed = static_cast<std::uint64_t>(seed);
      const auto outcome = expt::run(problem, settings);
      cluster += outcome.clustering_4to5 / kSeeds;
      span += outcome.load_span_pf / kSeeds;
      area += outcome.front_area / kSeeds;
      seconds += outcome.seconds / kSeeds;
    }
    series.add_row({static_cast<double>(pop), cluster, span, area, seconds});
    std::cout << "  NSGA-II pop=" << pop << ": cluster=" << cluster << " span=" << span
              << "pF area=" << area << " (" << seconds << "s/run)\n";
  }

  // The paper's alternative at the cost of the SMALLEST population.
  const auto sacga =
      expt::run(problem, bench::chosen_settings(expt::Algo::SACGA, bench::kPaperBudget));
  std::cout << "  SACGA   pop=100: cluster=" << sacga.clustering_4to5
            << " span=" << sacga.load_span_pf << "pF area=" << sacga.front_area << " ("
            << sacga.seconds << "s)\n\n";

  series.write_table(std::cout);

  expt::print_paper_vs_measured(
      std::cout, "bigger populations reduce clustering but cost more (§3)",
      "qualitative claim",
      "see the monotone trends in the table (cluster fraction vs seconds)");
  expt::print_paper_vs_measured(
      std::cout, "SACGA achieves the diversity without the population blow-up",
      "the paper's motivation for partitioned competition",
      "SACGA at pop 100 covers " + std::to_string(sacga.load_span_pf) + " pF");
  return 0;
}
