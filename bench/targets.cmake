# Benchmark / figure-reproduction binaries: one per data figure of the paper
# plus the §5 trend table, the runtime-overhead measurement and the
# reproduction's own ablations. All land in ${CMAKE_BINARY_DIR}/bench.

function(anadex_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    anadex::expt anadex::sysdes anadex::problems anadex::sacga anadex::moga
    anadex::yield anadex::scint anadex::circuit anadex::device anadex::common
    anadex_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

anadex_bench(fig02_nsga2_front)
anadex_bench(fig04_probability_curves)
anadex_bench(fig05_sacga_vs_tpg)
anadex_bench(fig06_partition_sweep)
anadex_bench(fig08_three_way_fronts)
anadex_bench(fig09_span_sweep)
anadex_bench(fig10_phase_progress)
anadex_bench(fig11_mesacga_vs_best_sacga)
anadex_bench(trend_twenty_specs)
anadex_bench(baseline_comparison)
anadex_bench(modulator_validation)
anadex_bench(ablation_schedule)
anadex_bench(ablation_population)

# EvalEngine evaluations/sec vs worker-thread count, plus the sharded
# scale-out section (plain chrono timing; emits BENCH_eval_throughput.json).
anadex_bench(eval_throughput)
target_link_libraries(eval_throughput PRIVATE anadex::engine anadex::robust
                                              anadex::shard)

# Cost of --trace relative to an untraced run (plain chrono timing; emits
# BENCH_obs_overhead.json and enforces the documented 2% gen-level budget).
anadex_bench(obs_overhead)
target_link_libraries(obs_overhead PRIVATE anadex::obs)

# Wall-clock micro/overhead measurements use google-benchmark.
anadex_bench(overhead_runtime)
target_link_libraries(overhead_runtime PRIVATE benchmark::benchmark)

# Evaluation/ranking kernel timings (plain chrono; emits BENCH_kernels.json
# and enforces the sweep-vs-legacy >= 5x acceptance check at n = 512).
anadex_bench(micro_kernels)
target_link_libraries(micro_kernels PRIVATE anadex::engine)
