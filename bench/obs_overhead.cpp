// Observability overhead: wall-clock cost of JSONL tracing relative to an
// untraced run, measured end-to-end through expt::run (so the number
// includes per-generation metric computation, JSON serialization and file
// IO — everything a user pays for `--trace`). Emits BENCH_obs_overhead.json
// and exits nonzero when gen-level tracing costs more than the budget in
// docs/observability.md (2%; relaxed under ANADEX_BENCH_QUICK, where the
// baseline run is too short for a stable ratio).
//
// Each configuration is repeated and the minimum wall time kept: the
// minimum is the least-noise estimator for a deterministic workload.
// Repeats are interleaved round-robin across the levels (off, gen, eval,
// off, gen, eval, ...) after an untimed warm-up run, so slow drift —
// cold caches, frequency scaling, a neighbour briefly stealing the core —
// lands on every level equally instead of biasing whichever block ran
// during the disturbance.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "expt/runner.hpp"
#include "obs/event_sink.hpp"

namespace {

using namespace anadex;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRepeats = 3;
constexpr double kGenBudgetPct = 2.0;        // docs/observability.md contract
constexpr double kQuickGenBudgetPct = 12.0;  // smoke runs are noise-dominated

struct Row {
  std::string level;
  double seconds = 0.0;      // min over repeats
  double overhead_pct = 0.0; // vs the untraced minimum
  double front_area = 0.0;   // must match the untraced run exactly
  std::size_t evaluations = 0;
};

expt::RunSettings with_level(const expt::RunSettings& base, obs::TraceLevel level,
                             const std::string& trace_path) {
  expt::RunSettings settings = base;
  if (level != obs::TraceLevel::Off) {
    settings.trace_path = trace_path;
    settings.trace_level = level;
  }
  return settings;
}

void measure_once(const expt::RunSettings& base, obs::TraceLevel level,
                  const std::string& trace_path, Row& row) {
  const auto settings = with_level(base, level, trace_path);
  const auto start = Clock::now();
  const auto outcome = expt::run(settings);
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  row.seconds = std::min(row.seconds, elapsed.count());
  row.front_area = outcome.front_area;
  row.evaluations = outcome.evaluations;
}

}  // namespace

int main() {
  const bool quick = [] {
    // Quick-mode is a CI pacing switch, not a result input: it only
    // scales iteration budgets. anadex-lint: allow(env-read)
    const char* env = std::getenv("ANADEX_BENCH_QUICK");
    return env != nullptr && env[0] == '1';
  }();
  const double budget_pct = quick ? kQuickGenBudgetPct : kGenBudgetPct;

  expt::RunSettings settings = bench::chosen_settings(expt::Algo::MESACGA, 400);
  const std::string trace_path = "obs_overhead_trace.jsonl";

  std::printf("observability overhead, MESACGA on '%s' (%zu generations, "
              "population %zu, min of %zu repeats)\n\n",
              settings.spec.name.c_str(), settings.generations, settings.population,
              kRepeats);
  std::printf("  level  seconds    overhead  front_area\n");

  const obs::TraceLevel levels[] = {obs::TraceLevel::Off, obs::TraceLevel::Gen,
                                    obs::TraceLevel::Eval};

  // Untimed warm-up: the first run pays cold caches and page faults that
  // would otherwise be charged entirely to the untraced baseline.
  (void)expt::run(with_level(settings, obs::TraceLevel::Off, trace_path));

  std::vector<Row> rows(std::size(levels));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].level = std::string(obs::to_string(levels[i]));
    rows[i].seconds = 1e100;
  }
  for (std::size_t r = 0; r < kRepeats; ++r) {
    for (std::size_t i = 0; i < std::size(levels); ++i) {
      measure_once(settings, levels[i], trace_path, rows[i]);
    }
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      rows[i].overhead_pct = 100.0 * (rows[i].seconds / rows.front().seconds - 1.0);
    }
    std::printf("  %-5s  %9.4f  %+7.2f%%  %.6g\n", rows[i].level.c_str(),
                rows[i].seconds, rows[i].overhead_pct, rows[i].front_area);
  }
  std::filesystem::remove(trace_path);

  // Tracing must be pure observation: identical results at every level.
  bool results_identical = true;
  for (const Row& row : rows) {
    results_identical = results_identical && row.front_area == rows.front().front_area &&
                        row.evaluations == rows.front().evaluations;
  }

  const double gen_overhead = rows[1].overhead_pct;
  const bool within_budget = gen_overhead <= budget_pct;

  std::ofstream json("BENCH_obs_overhead.json");
  json << "{\n"
       << "  \"bench\": \"obs_overhead\",\n"
       << "  \"algo\": \"MESACGA\",\n"
       << "  \"generations\": " << settings.generations << ",\n"
       << "  \"population\": " << settings.population << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"budget_pct\": " << budget_pct << ",\n"
       << "  \"gen_overhead_pct\": " << gen_overhead << ",\n"
       << "  \"within_budget\": " << (within_budget ? "true" : "false") << ",\n"
       << "  \"results_identical\": " << (results_identical ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"level\": \"" << row.level << "\", \"seconds\": " << row.seconds
         << ", \"overhead_pct\": " << row.overhead_pct
         << ", \"front_area\": " << row.front_area
         << ", \"evaluations\": " << row.evaluations << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_obs_overhead.json\n");

  if (!results_identical) {
    std::printf("ERROR: tracing changed the optimization result\n");
    return 1;
  }
  if (!within_budget) {
    std::printf("ERROR: gen-level tracing overhead %.2f%% exceeds the %.1f%% budget\n",
                gen_overhead, budget_pct);
    return 1;
  }
  return 0;
}
