// Micro-benchmarks of the evaluation and ranking kernels: the costs that
// determine an optimization run's wall-clock. Plain chrono timing; emits
// BENCH_kernels.json for the CI artifact collector and enforces the
// documented acceptance check — the O(n log n) sweep kernel must beat the
// legacy pairwise sort by >= 5x at n = 512 (docs/performance.md).
//
// ANADEX_BENCH_QUICK=1 shrinks the iteration budgets so the CI smoke run
// stays fast; the speedup check still applies (the ratio is budget-free).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "engine/eval_cache.hpp"
#include "moga/hypervolume.hpp"
#include "moga/nds.hpp"
#include "moga/operators.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "scint/integrator.hpp"

namespace {

using namespace anadex;
using Clock = std::chrono::steady_clock;

bool quick_mode() {
  // Quick-mode is a CI pacing switch, not a result input: it only
  // scales iteration budgets. anadex-lint: allow(env-read)
  const char* v = std::getenv("ANADEX_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Best-of-3 timing: runs `fn` `iters` times per round and reports the
/// fastest round's nanoseconds per iteration (minimum filters scheduler
/// noise better than the mean on shared CI runners).
template <class Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  double best = 1e300;
  for (int round = 0; round < 3; ++round) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double, std::nano> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count() / static_cast<double>(iters));
  }
  return best;
}

struct Row {
  std::string kernel;
  std::size_t n = 0;
  double ns = 0.0;
};

/// Random bi-objective population with a sprinkle of duplicates and
/// infeasible members — the shape the selection loop actually ranks.
moga::Population ranking_population(std::size_t n, std::size_t arity) {
  Rng rng(7);
  moga::Population pop(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& ind = pop[i];
    if (i % 16 == 15) {
      ind.eval = pop[i - 1].eval;  // exact duplicate vector
      continue;
    }
    ind.eval.objectives.resize(arity);
    for (auto& f : ind.eval.objectives) f = rng.uniform();
    if (i % 8 == 7) ind.eval.violations = {rng.uniform(0.5, 2.0)};
  }
  return pop;
}

volatile double g_sink = 0.0;  // keeps the optimizer from deleting kernels

}  // namespace

int main() {
  const bool quick = quick_mode();
  const std::size_t scale = quick ? 1 : 8;
  std::vector<Row> rows;
  const auto record = [&rows](std::string kernel, std::size_t n, double ns) {
    std::printf("  %-22s n=%-5zu %12.1f ns/op\n", kernel.c_str(), n, ns);
    rows.push_back({std::move(kernel), n, ns});
  };

  std::printf("anadex kernel micro-benchmarks%s\n\n", quick ? " (quick mode)" : "");

  // --- evaluation kernels --------------------------------------------------
  {
    const auto proc = device::Process::typical();
    const device::Geometry g{20e-6, 0.5e-6};
    double vgs = 0.7;
    record("mosfet_op", 1, ns_per_op(1000 * scale, [&] {
             const auto op = device::solve_op(proc.nmos, g, device::Bias{vgs, 1.0, 0.0});
             g_sink = op.gm;
             vgs = 0.7 + (vgs - 0.69);  // keep the optimizer honest
           }));

    scint::IntegratorDesign d;  // defaults are a mid-box design
    record("integrator_corner", 1, ns_per_op(500 * scale, [&] {
             g_sink = scint::evaluate(proc, d, scint::IntegratorContext{}).settling_time;
           }));
  }
  {
    const problems::IntegratorProblem problem(problems::chosen_spec());
    Rng rng(1);
    const auto genes = moga::random_genome(problem.bounds(), rng);
    moga::Evaluation eval;
    record("problem_evaluate", 1, ns_per_op(200 * scale, [&] {
             problem.evaluate(genes, eval);
             g_sink = eval.objectives[0];
           }));

    // Cache kernels: the per-item costs the memo layer adds to a batch.
    record("hash_genes", genes.size(), ns_per_op(20000 * scale, [&] {
             g_sink = static_cast<double>(hash_genes(genes, 0));
           }));
    engine::EvalCache cache(1024);
    const std::uint64_t h = hash_genes(genes, 0);
    cache.insert(genes, h, eval);
    moga::Evaluation out;
    record("eval_cache_hit", 1, ns_per_op(20000 * scale, [&] {
             (void)cache.lookup(genes, h, out);
             g_sink = out.objectives[0];
           }));
  }

  // --- ranking kernels: legacy vs sweep (m = 2) ----------------------------
  double legacy_512 = 0.0;
  double sweep_512 = 0.0;
  for (const std::size_t n : {std::size_t{128}, std::size_t{256}, std::size_t{512},
                              std::size_t{1024}}) {
    moga::Population pop = ranking_population(n, 2);
    const std::size_t iters = std::max<std::size_t>(scale * 40960 / n, 2);

    moga::NdsArena arena;
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    const double legacy = ns_per_op(iters, [&] {
      g_sink = static_cast<double>(moga::legacy_nondominated_sort(pop, all, arena).size());
    });
    record("nds_legacy", n, legacy);

    moga::RankingScratch scratch;
    const double sweep = ns_per_op(iters, [&] {
      g_sink = static_cast<double>(scratch.sweep_sort(pop, all).size());
    });
    record("nds_sweep", n, sweep);

    // Cheap golden check while we are here: both kernels on this exact
    // population must agree (the full randomized suite lives in tests).
    if (scratch.sweep_sort(pop, all) != moga::legacy_nondominated_sort(pop, all, arena)) {
      std::printf("ERROR: sweep kernel diverged from legacy at n=%zu\n", n);
      return 1;
    }
    if (n == 512) {
      legacy_512 = legacy;
      sweep_512 = sweep;
    }
  }

  // --- ranking kernels: legacy vs bitset (m = 3) ---------------------------
  {
    const std::size_t n = 256;
    moga::Population pop = ranking_population(n, 3);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    const std::size_t iters = std::max<std::size_t>(scale * 16, 2);
    moga::NdsArena arena;
    record("nds_legacy_m3", n, ns_per_op(iters, [&] {
             g_sink = static_cast<double>(
                 moga::legacy_nondominated_sort(pop, all, arena).size());
           }));
    moga::RankingScratch scratch;
    record("nds_bitset_m3", n, ns_per_op(iters, [&] {
             g_sink = static_cast<double>(scratch.bitset_sort(pop, all).size());
           }));
    if (scratch.bitset_sort(pop, all) != moga::legacy_nondominated_sort(pop, all, arena)) {
      std::printf("ERROR: bitset kernel diverged from legacy at n=%zu\n", n);
      return 1;
    }
  }

  // --- crowding + hypervolume ----------------------------------------------
  {
    const std::size_t n = 512;
    moga::Population pop = ranking_population(n, 2);
    moga::RankingScratch scratch;
    const auto fronts = scratch.sort(pop);
    record("crowding", n, ns_per_op(std::max<std::size_t>(scale * 64, 2), [&] {
             for (const auto& front : fronts) scratch.crowding(pop, front);
             g_sink = pop[0].crowding;
           }));
  }
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    Rng rng(9);
    std::vector<double> flat;
    moga::FrontPoints nested;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.uniform();
      const double y = 1.0 - x + 0.01 * rng.uniform();
      flat.insert(flat.end(), {x, y});
      nested.push_back({x, y});
    }
    const std::vector<double> ref{1.2, 1.2};
    const std::size_t iters = std::max<std::size_t>(scale * 8192 / n, 2);
    record("hv2d_nested", n,
           ns_per_op(iters, [&] { g_sink = moga::hypervolume(nested, ref); }));
    record("hv2d_flat", n,
           ns_per_op(iters, [&] { g_sink = moga::hypervolume_2d(flat, ref); }));
  }

  const double sweep_speedup = legacy_512 / sweep_512;
  const bool sweep_ok = sweep_speedup >= 5.0;
  std::printf("\nsweep speedup at n=512: %.1fx (required >= 5x) -> %s\n", sweep_speedup,
              sweep_ok ? "ok" : "FAIL");

  std::ofstream json("BENCH_kernels.json");
  json << "{\n"
       << "  \"bench\": \"kernels\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"sweep_speedup_at_512\": " << sweep_speedup << ",\n"
       << "  \"sweep_ok\": " << (sweep_ok ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"kernel\": \"" << rows[i].kernel << "\", \"n\": " << rows[i].n
         << ", \"ns_per_op\": " << rows[i].ns << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_kernels.json\n");

  return sweep_ok ? 0 : 1;
}
