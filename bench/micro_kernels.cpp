// Micro-benchmarks of the evaluation and ranking kernels: the costs that
// determine an optimization run's wall-clock. Useful when tuning the
// circuit model or the non-dominated-sorting implementation.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "moga/hypervolume.hpp"
#include "moga/nds.hpp"
#include "moga/operators.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "scint/integrator.hpp"

namespace {

using namespace anadex;

void BM_MosfetOperatingPoint(benchmark::State& state) {
  const auto proc = device::Process::typical();
  const device::Geometry g{20e-6, 0.5e-6};
  double vgs = 0.7;
  for (auto _ : state) {
    const auto op = device::solve_op(proc.nmos, g, device::Bias{vgs, 1.0, 0.0});
    benchmark::DoNotOptimize(op.gm);
    vgs = 0.7 + (vgs - 0.69);  // keep the optimizer honest
  }
}
BENCHMARK(BM_MosfetOperatingPoint);

void BM_IntegratorEvaluateOneCorner(benchmark::State& state) {
  const auto proc = device::Process::typical();
  scint::IntegratorDesign d;  // defaults are a mid-box design
  for (auto _ : state) {
    const auto perf = scint::evaluate(proc, d, scint::IntegratorContext{});
    benchmark::DoNotOptimize(perf.settling_time);
  }
}
BENCHMARK(BM_IntegratorEvaluateOneCorner);

void BM_ProblemEvaluateFull(benchmark::State& state) {
  const problems::IntegratorProblem problem(problems::chosen_spec());
  Rng rng(1);
  const auto bounds = problem.bounds();
  const auto genes = moga::random_genome(bounds, rng);
  moga::Evaluation eval;
  for (auto _ : state) {
    problem.evaluate(genes, eval);
    benchmark::DoNotOptimize(eval.objectives[0]);
  }
}
BENCHMARK(BM_ProblemEvaluateFull);

void BM_NondominatedSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  moga::Population pop(n);
  for (auto& ind : pop) {
    ind.eval.objectives = {rng.uniform(), rng.uniform()};
  }
  for (auto _ : state) {
    auto fronts = moga::fast_nondominated_sort(pop);
    benchmark::DoNotOptimize(fronts.size());
  }
}
BENCHMARK(BM_NondominatedSort)->Arg(100)->Arg(200)->Arg(400);

void BM_Hypervolume2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  moga::FrontPoints front;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform();
    front.push_back({x, 1.0 - x + 0.01 * rng.uniform()});
  }
  const std::vector<double> ref{1.2, 1.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(moga::hypervolume(front, ref));
  }
}
BENCHMARK(BM_Hypervolume2d)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
