// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "expt/figures.hpp"
#include "expt/runner.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::bench {

/// Standard generation budget of the paper's front figures.
inline constexpr std::size_t kPaperBudget = 800;

/// Seed used by all figure benches (deterministic output).
inline constexpr std::uint64_t kSeed = 3;

/// Scale factor for quick smoke runs: ANADEX_BENCH_QUICK=1 in the
/// environment divides generation budgets by 8 (useful while developing).
inline std::size_t scaled(std::size_t generations) {
  static const bool quick = [] {
    // Quick-mode is a CI pacing switch, not a result input: it only
    // scales iteration budgets. anadex-lint: allow(env-read)
    const char* env = std::getenv("ANADEX_BENCH_QUICK");
    return env != nullptr && env[0] == '1';
  }();
  return quick ? std::max<std::size_t>(generations / 8, 16) : generations;
}

/// Base settings for runs against the paper's chosen specification.
inline expt::RunSettings chosen_settings(expt::Algo algo, std::size_t generations) {
  expt::RunSettings s;
  s.algo = algo;
  s.spec = problems::chosen_spec();
  s.population = 100;
  s.generations = scaled(generations);
  // Keep the phase-I cap under the total budget when quick-scaling.
  s.phase1_cap = std::min<std::size_t>(200, std::max<std::size_t>(s.generations / 4, 1));
  s.partitions = 8;
  s.seed = kSeed;
  return s;
}

}  // namespace anadex::bench
