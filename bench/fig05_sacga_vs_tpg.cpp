// Figure 5 — "Pareto Fronts after 800 iterations of i) Traditional Purely
// Global competition based and ii) SACGA based evolution".
//
// An 8-partition SACGA against NSGA-II at the same 800-generation budget on
// the paper's chosen specification: SACGA's front must cover (nearly) the
// whole 0-5 pF load axis where TPG clusters at the top.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 5",
                     "TPG vs 8-partition SACGA after 800 iterations");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto tpg =
      expt::run(problem, bench::chosen_settings(expt::Algo::TPG, bench::kPaperBudget));
  const auto sacga =
      expt::run(problem, bench::chosen_settings(expt::Algo::SACGA, bench::kPaperBudget));

  expt::print_fronts(std::cout,
                     {{"Only Global (TPG)", tpg.front}, {"SACGA", sacga.front}});
  expt::print_outcome_summary(std::cout, "TPG", tpg);
  expt::print_outcome_summary(std::cout, "SACGA m=8", sacga);

  expt::print_paper_vs_measured(
      std::cout, "coverage of the load axis",
      "SACGA spreads over ~0-5 pF, TPG clusters at 4-5 pF",
      "SACGA span " + std::to_string(sacga.load_span_pf) + " pF vs TPG span " +
          std::to_string(tpg.load_span_pf) + " pF");
  expt::print_paper_vs_measured(
      std::cout, "front quality (area metric, lower better)",
      "SACGA better than TPG",
      std::to_string(sacga.front_area) + " vs " + std::to_string(tpg.front_area) +
          (sacga.front_area < tpg.front_area ? "  [ordering holds]"
                                             : "  [ordering DEVIATES]"));
  return 0;
}
