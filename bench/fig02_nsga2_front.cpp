// Figure 2 — "Pareto-optimal Front after 800 iterations of NSGA-II".
//
// The paper's observation: applied directly, NSGA-II (the traditional
// purely-global-competition GA) produces a front whose solutions cluster
// mostly between 4 and 5 pF instead of covering the whole 0–5 pF load axis.
// This bench runs that exact experiment and reports the clustering numbers.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 2",
                     "Pareto front after 800 iterations of NSGA-II (TPG) — "
                     "the clustering pathology");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto settings = bench::chosen_settings(expt::Algo::TPG, bench::kPaperBudget);
  const auto outcome = expt::run(problem, settings);

  expt::print_fronts(std::cout, {{"NSGA-II (TPG)", outcome.front}});
  expt::print_outcome_summary(std::cout, "TPG", outcome);

  expt::print_paper_vs_measured(
      std::cout, "solutions clustered in the 4-5 pF band",
      "\"mostly between 4 and 5 pF\"",
      "fraction " + std::to_string(outcome.clustering_4to5) + ", load span " +
          std::to_string(outcome.load_span_pf) + " pF");
  expt::print_paper_vs_measured(
      std::cout, "desired coverage", "well-distributed over 0-5 pF",
      outcome.clustering_4to5 > 0.5 ? "NOT achieved by TPG (as in the paper)"
                                    : "achieved (deviation from the paper)");
  return 0;
}
