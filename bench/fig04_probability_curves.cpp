// Figure 4 — "Probability curves for n = 5" (span = 100).
//
// Pure evaluation of the SACGA annealing schedule, eqns (2)-(4): the
// participation probability of the i-th locally-superior solution as a
// function of gen - gen_t, for i = 1..5.
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/series.hpp"
#include "sacga/schedule.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 4",
                     "SACGA participation-probability curves, n = 5, span = 100");

  constexpr std::size_t kN = 5;
  constexpr std::size_t kSpan = 100;
  const auto schedule =
      sacga::AnnealingSchedule::shaped(sacga::ScheduleShape{}, 1.0, 100.0, kN, kSpan);

  std::cout << "shaped parameters: k1=" << schedule.params().k1
            << " k2=" << schedule.params().k2 << " k3=" << schedule.params().k3
            << " alpha=" << schedule.params().alpha
            << " T_init=" << schedule.params().t_init << "\n";

  Series series("participation probability vs (gen - gen_t)",
                {"gen_offset", "i=1", "i=2", "i=3", "i=4", "i=5", "T_A"});
  std::vector<PlotSeries> plots(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    plots[i].label = "i=" + std::to_string(i + 1);
    plots[i].glyph = static_cast<char>('1' + i);
  }

  for (std::size_t gen = 0; gen <= kSpan; gen += 5) {
    std::vector<double> row{static_cast<double>(gen)};
    for (std::size_t i = 1; i <= kN; ++i) {
      const double p = schedule.participation_probability(i, gen);
      row.push_back(p);
      plots[i - 1].x.push_back(static_cast<double>(gen));
      plots[i - 1].y.push_back(p);
    }
    row.push_back(schedule.temperature(gen));
    series.add_row(row);
  }

  PlotOptions options;
  options.x_label = "gen - gen_t";
  options.y_label = "probability";
  std::cout << render_scatter(plots, options);
  series.write_table(std::cout);

  expt::print_paper_vs_measured(
      std::cout, "curve ordering",
      "earlier-considered solutions (lower i) always more likely",
      "prob(1) >= prob(2) >= ... >= prob(5) at every generation (verified by "
      "the schedule tests)");
  expt::print_paper_vs_measured(
      std::cout, "phase character",
      "pure local competition early, pure global competition late",
      "prob(i=1) rises from " +
          std::to_string(schedule.participation_probability(1, 0)) + " to " +
          std::to_string(schedule.participation_probability(1, kSpan)));
  return 0;
}
