// Figure 8 — "Pareto Fronts obtained after 800 iterations of i) Purely
// Global competition based, ii) SACGA based, and iii) MESACGA based
// evolution", plus the paper's §5 quality ordering
// MESACGA >= SACGA >= TPG (for budgets above ~650 iterations).
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 8",
                     "TPG vs SACGA vs MESACGA fronts after 800 iterations");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto tpg =
      expt::run(problem, bench::chosen_settings(expt::Algo::TPG, bench::kPaperBudget));
  const auto sacga =
      expt::run(problem, bench::chosen_settings(expt::Algo::SACGA, bench::kPaperBudget));
  const auto mesacga =
      expt::run(problem, bench::chosen_settings(expt::Algo::MESACGA, bench::kPaperBudget));

  expt::print_fronts(std::cout, {{"Only Global (TPG)", tpg.front},
                                 {"SACGA", sacga.front},
                                 {"MESACGA", mesacga.front}});
  expt::print_outcome_summary(std::cout, "TPG", tpg);
  expt::print_outcome_summary(std::cout, "SACGA m=8", sacga);
  expt::print_outcome_summary(std::cout, "MESACGA 20..1", mesacga);

  // Average over a few seeds for a stable ordering statement (single-seed
  // GA comparisons are noisy; the paper reports trends over many runs).
  double tpg_avg = 0.0;
  double sacga_avg = 0.0;
  double mesacga_avg = 0.0;
  constexpr int kSeeds = 3;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto s = bench::chosen_settings(expt::Algo::TPG, bench::kPaperBudget);
    s.seed = static_cast<std::uint64_t>(seed);
    tpg_avg += expt::run(problem, s).front_area;
    s = bench::chosen_settings(expt::Algo::SACGA, bench::kPaperBudget);
    s.seed = static_cast<std::uint64_t>(seed);
    sacga_avg += expt::run(problem, s).front_area;
    s = bench::chosen_settings(expt::Algo::MESACGA, bench::kPaperBudget);
    s.seed = static_cast<std::uint64_t>(seed);
    mesacga_avg += expt::run(problem, s).front_area;
  }
  tpg_avg /= kSeeds;
  sacga_avg /= kSeeds;
  mesacga_avg /= kSeeds;

  std::cout << "\nmean front-area metric over " << kSeeds << " seeds (lower better):\n"
            << "  MESACGA " << mesacga_avg << "  |  SACGA " << sacga_avg
            << "  |  TPG " << tpg_avg << "\n";

  const bool ordering = mesacga_avg <= sacga_avg && sacga_avg <= tpg_avg;
  expt::print_paper_vs_measured(
      std::cout, "quality ordering at 800 iterations (§5 trend 1)",
      "MESACGA >= SACGA >= TPG",
      ordering ? "MESACGA >= SACGA >= TPG  [holds]"
               : "deviation in at least one pair (seed noise; see values above)");
  return 0;
}
