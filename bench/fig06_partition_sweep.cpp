// Figure 6 — "Determination of Optimal number of partitions": the quality
// metric of a 1200-iteration SACGA swept over the partition count m = 6..24.
// The paper found m = 16 optimal for its problem instance and noted that
// "no alternative to complete experimentation is known" — the motivation
// for MESACGA.
#include <cstdint>
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/series.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 6",
                     "SACGA quality after 1200 iterations vs number of partitions");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  Series series("front-area metric vs partition count",
                {"partitions_m", "front_area_0p1mWpF", "load_span_pF"});
  PlotSeries plot;
  plot.label = "SACGA @1200 iters";

  std::size_t best_m = 0;
  double best_area = std::numeric_limits<double>::infinity();
  constexpr int kSeeds = 3;  // GA noise would otherwise hide the optimum
  for (std::size_t m = 6; m <= 24; m += 2) {
    double area = 0.0;
    double span = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto settings = bench::chosen_settings(expt::Algo::SACGA, 1200);
      settings.partitions = m;
      settings.seed = static_cast<std::uint64_t>(seed);
      const auto outcome = expt::run(problem, settings);
      area += outcome.front_area / kSeeds;
      span += outcome.load_span_pf / kSeeds;
    }
    series.add_row({static_cast<double>(m), area, span});
    plot.x.push_back(static_cast<double>(m));
    plot.y.push_back(area);
    if (area < best_area) {
      best_area = area;
      best_m = m;
    }
    std::cout << "  m=" << m << " -> mean front_area=" << area << "\n";
  }

  PlotOptions options;
  options.x_label = "Number of Partitions, m";
  options.y_label = "front-area metric (0.1 mW*pF, lower better)";
  std::cout << render_scatter({plot}, options);
  series.write_table(std::cout);

  expt::print_paper_vs_measured(
      std::cout, "optimal partition count after 1200 iterations",
      "m = 16 (interior optimum; quality degrades toward m = 6 and m = 24)",
      "best m = " + std::to_string(best_m) + " with metric " + std::to_string(best_area));
  return 0;
}
