// Figure 9 — "Performance of SACGA for various preset values of total
// number of iterations": the quality metric of an 8-partition SACGA as the
// total budget grows. The paper observes diminishing returns: "not much
// improvement of the Pareto front is obtained for span > 1000".
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/series.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 9",
                     "8-partition SACGA quality vs total iteration budget");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  Series series("front-area metric vs total iterations",
                {"total_iterations", "front_area_0p1mWpF"});
  PlotSeries plot;
  plot.label = "SACGA m=8";

  double at_800 = 0.0;
  double at_1200 = 0.0;
  for (std::size_t budget : {300u, 450u, 600u, 800u, 1000u, 1200u}) {
    const auto outcome =
        expt::run(problem, bench::chosen_settings(expt::Algo::SACGA, budget));
    series.add_row({static_cast<double>(bench::scaled(budget)), outcome.front_area});
    plot.x.push_back(static_cast<double>(bench::scaled(budget)));
    plot.y.push_back(outcome.front_area);
    if (budget == 800) at_800 = outcome.front_area;
    if (budget == 1200) at_1200 = outcome.front_area;
    std::cout << "  budget=" << bench::scaled(budget)
              << " -> front_area=" << outcome.front_area << "\n";
  }

  PlotOptions options;
  options.x_label = "Total number of iterations";
  options.y_label = "front-area metric (0.1 mW*pF, lower better)";
  std::cout << render_scatter({plot}, options);
  series.write_table(std::cout);

  const double late_gain = at_800 > 0.0 ? (at_800 - at_1200) / at_800 : 0.0;
  expt::print_paper_vs_measured(
      std::cout, "diminishing returns past ~800-1000 iterations",
      "metric improves steeply early, then flattens; little gain beyond 1000",
      "relative improvement from 800 to 1200 iterations: " +
          std::to_string(late_gain * 100.0) + " %");
  return 0;
}
