// §5 trend table — the paper evaluated all three algorithms on 20 circuit
// specifications "graded by their level of difficulty" and reports that for
// every case run past ~650 iterations the quality ordering was
// MESACGA >= SACGA >= TPG. This bench regenerates that table at a
// 800-iteration budget (the paper regime for the ordering claim).
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "common/series.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "§5 trends",
                     "Quality ordering over the 20 graded specifications "
                     "(800 iterations each)");

  const auto suite = problems::spec_suite();
  Series series("front-area metric per spec (lower better)",
                {"spec", "TPG", "SACGA", "MESACGA", "mesacga_le_sacga", "sacga_le_tpg"});

  int mesacga_wins = 0;
  int sacga_wins = 0;
  int full_ordering = 0;
  const std::size_t budget = 800;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const problems::IntegratorProblem problem(suite[i]);
    auto settings = bench::chosen_settings(expt::Algo::TPG, budget);
    settings.spec = suite[i];

    settings.algo = expt::Algo::TPG;
    const double tpg = expt::run(problem, settings).front_area;
    settings.algo = expt::Algo::SACGA;
    const double sacga = expt::run(problem, settings).front_area;
    settings.algo = expt::Algo::MESACGA;
    const double mesacga = expt::run(problem, settings).front_area;

    const bool m_le_s = mesacga <= sacga;
    const bool s_le_t = sacga <= tpg;
    mesacga_wins += m_le_s ? 1 : 0;
    sacga_wins += s_le_t ? 1 : 0;
    full_ordering += (m_le_s && s_le_t) ? 1 : 0;
    series.add_row({static_cast<double>(i + 1), tpg, sacga, mesacga,
                    m_le_s ? 1.0 : 0.0, s_le_t ? 1.0 : 0.0});
    std::cout << "  " << std::setw(12) << suite[i].name << "  TPG=" << std::setw(8)
              << std::setprecision(4) << tpg << "  SACGA=" << std::setw(8) << sacga
              << "  MESACGA=" << std::setw(8) << mesacga
              << (m_le_s && s_le_t ? "  [M>=S>=T]" : "") << "\n";
  }

  series.write_table(std::cout);

  std::cout << "\nordering statistics over " << suite.size() << " specs:\n"
            << "  MESACGA <= SACGA : " << mesacga_wins << "/" << suite.size() << "\n"
            << "  SACGA   <= TPG   : " << sacga_wins << "/" << suite.size() << "\n"
            << "  full M <= S <= T : " << full_ordering << "/" << suite.size() << "\n";

  expt::print_paper_vs_measured(
      std::cout, "quality ordering beyond 650 iterations",
      "MESACGA >= SACGA >= TPG in all 20 cases",
      std::to_string(full_ordering) + "/20 full orderings (GA runs are single-seed "
      "here; the pairwise majorities above are the robust signal)");
  return 0;
}
