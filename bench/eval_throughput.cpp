// EvalEngine throughput: evaluations/second of IntegratorProblem batches
// versus worker-thread count, plus a bit-identity cross-check of every
// parallel run against the serial reference. Emits
// BENCH_eval_throughput.json next to the working directory for the CI
// artifact collector.
//
// Expect near-linear speedup up to the machine's core count; on a
// single-core runner every row collapses to ~1x, which the JSON records
// honestly via "hardware_threads".
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/eval_engine.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

namespace {

using namespace anadex;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatchSize = 256;  // one large generation's offspring
constexpr std::size_t kRepeats = 8;      // timed batches per thread count

std::vector<engine::Genome> make_genomes(const moga::Problem& problem) {
  const auto bounds = problem.bounds();
  Rng rng(42);
  std::vector<engine::Genome> genomes(kBatchSize);
  for (auto& genes : genomes) {
    genes.resize(bounds.size());
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      genes[k] = rng.uniform(bounds[k].lower, bounds[k].upper);
    }
  }
  return genomes;
}

bool identical(const std::vector<moga::Evaluation>& a,
               const std::vector<moga::Evaluation>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].objectives != b[i].objectives) return false;
    if (a[i].violations != b[i].violations) return false;
  }
  return true;
}

struct Row {
  std::size_t requested = 0;
  std::size_t effective = 0;
  double evals_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical = true;
};

}  // namespace

int main() {
  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto genomes = make_genomes(problem);

  std::vector<moga::Evaluation> reference(kBatchSize);
  std::vector<moga::Evaluation> out(kBatchSize);

  std::printf("EvalEngine throughput, %zu-genome batches of '%s' (%zu repeats)\n\n",
              kBatchSize, problem.name().c_str(), kRepeats);
  std::printf("  threads  effective  evals/sec     speedup  bit-identical\n");

  std::vector<Row> rows;
  for (const std::size_t requested : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}, std::size_t{0}}) {
    const engine::EvalEngine eval(problem, requested);
    eval.evaluate_batch(genomes, out);  // warm-up (first touch, page-in)

    const auto start = Clock::now();
    for (std::size_t r = 0; r < kRepeats; ++r) {
      eval.evaluate_batch(genomes, out);
    }
    const std::chrono::duration<double> elapsed = Clock::now() - start;

    Row row;
    row.requested = requested;
    row.effective = eval.threads();
    row.evals_per_sec = static_cast<double>(kBatchSize * kRepeats) / elapsed.count();
    if (requested == 1) {
      reference = out;
      rows.push_back(row);
    } else {
      row.speedup = row.evals_per_sec / rows.front().evals_per_sec;
      row.bit_identical = identical(out, reference);
      rows.push_back(row);
    }
    std::printf("  %7zu  %9zu  %11.0f  %6.2fx  %s\n", row.requested, row.effective,
                row.evals_per_sec, row.speedup, row.bit_identical ? "yes" : "NO");
  }

  std::ofstream json("BENCH_eval_throughput.json");
  json << "{\n"
       << "  \"bench\": \"eval_throughput\",\n"
       << "  \"problem\": \"" << problem.name() << "\",\n"
       << "  \"batch_size\": " << kBatchSize << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"threads_requested\": " << row.requested
         << ", \"threads_effective\": " << row.effective
         << ", \"evals_per_sec\": " << row.evals_per_sec
         << ", \"speedup_vs_serial\": " << row.speedup
         << ", \"bit_identical\": " << (row.bit_identical ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_eval_throughput.json\n");

  bool all_identical = true;
  for (const Row& row : rows) all_identical = all_identical && row.bit_identical;
  if (!all_identical) {
    std::printf("ERROR: a parallel run diverged from the serial reference\n");
    return 1;
  }
  return 0;
}
