// EvalEngine throughput: evaluations/second of IntegratorProblem batches
// versus worker-thread count, plus a bit-identity cross-check of every
// parallel run against the serial reference, plus the dedup-cache section:
// throughput with the memo cache on vs off at controlled duplicate rates.
// Emits BENCH_eval_throughput.json next to the working directory for the
// CI artifact collector.
//
// Expect near-linear speedup up to the machine's core count; on a
// single-core runner every row collapses to ~1x, which the JSON records
// honestly via "hardware_threads". The cache section's acceptance check is
// duplicate-rate driven, not core-count driven: at a 50% duplicate rate
// the cached engine must deliver >= 1.3x the uncached throughput
// (docs/performance.md).
//
// The scalar-vs-SIMD section times a Simd-mode serial engine (SoA lane
// kernels, docs/performance.md) against the Scalar-mode per-item oracle on
// the same batches. The lane path must match the oracle bit for bit on
// every build; the >= 4x single-thread speedup gate applies only under
// --simd-gate, which CI's native-ISA bench job passes (a generic
// -march=x86-64 build has no business being held to an AVX-class ratio).
//
// Flags / environment:
//   --duplicate-rate R   run the cache section at the single rate R (0..1)
//                        instead of the default {0, 0.2, 0.5} sweep
//   --simd-gate          enforce the >= 4x scalar-to-SIMD speedup (exit 1
//                        below it); JSON records "simd_gate_enforced"
//   --shard-gate         enforce the >= 2x 4-shard scale-out speedup (exit
//                        1 below it); JSON records "shard_gate_enforced"
//   ANADEX_BENCH_QUICK   shrink batch/repeat budgets for the CI smoke run
//
// The sharded section times a full island exploration executed by
// shard::run_sharded at 1 worker shard vs 4 (thread mode, fsync off so the
// ratio measures scale-out rather than disk flushes). The 4-shard run must
// reproduce the 1-shard front and evaluation totals EXACTLY — byte
// identity is the sharding contract (docs/sharding.md) — and under
// --shard-gate must finish at least 2x faster.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "engine/eval_engine.hpp"
#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "robust/guarded_problem.hpp"
#include "shard/coordinator.hpp"

namespace {

using namespace anadex;
using Clock = std::chrono::steady_clock;

bool quick_mode() {
  // Quick-mode is a CI pacing switch, not a result input: it only
  // scales iteration budgets. anadex-lint: allow(env-read)
  const char* v = std::getenv("ANADEX_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<engine::Genome> make_genomes(const moga::Problem& problem,
                                         std::size_t count) {
  const auto bounds = problem.bounds();
  Rng rng(42);
  std::vector<engine::Genome> genomes(count);
  for (auto& genes : genomes) {
    genes.resize(bounds.size());
    for (std::size_t k = 0; k < bounds.size(); ++k) {
      genes[k] = rng.uniform(bounds[k].lower, bounds[k].upper);
    }
  }
  return genomes;
}

/// Builds `count` batches of `batch_size` genomes, all distinct ACROSS
/// batches, with `rate` of each batch rewritten into copies of earlier
/// members of the SAME batch — modelling the clone/elitism duplication of
/// a real generation while keeping successive generations fresh, so the
/// measured speedup isolates the duplicate-rate knob rather than the
/// repeat-the-same-batch LRU effect.
std::vector<std::vector<engine::Genome>> duplicated_batches(const moga::Problem& problem,
                                                            std::size_t count,
                                                            std::size_t batch_size,
                                                            double rate) {
  const auto pool = make_genomes(problem, count * batch_size);
  Rng rng(77);
  std::vector<std::vector<engine::Genome>> batches(count);
  for (std::size_t b = 0; b < count; ++b) {
    auto& batch = batches[b];
    batch.assign(pool.begin() + static_cast<std::ptrdiff_t>(b * batch_size),
                 pool.begin() + static_cast<std::ptrdiff_t>((b + 1) * batch_size));
    for (std::size_t i = 1; i < batch.size(); ++i) {
      if (rng.uniform() < rate) {
        batch[i] = batch[rng.uniform_index(i)];  // copy an earlier member
      }
    }
  }
  return batches;
}

bool identical(const std::vector<moga::Evaluation>& a,
               const std::vector<moga::Evaluation>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].objectives != b[i].objectives) return false;
    if (a[i].violations != b[i].violations) return false;
  }
  return true;
}

struct Row {
  std::size_t requested = 0;
  std::size_t effective = 0;
  double evals_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical = true;
};

struct CacheRow {
  double rate = 0.0;
  double nocache_evals_per_sec = 0.0;
  double cache_evals_per_sec = 0.0;
  double speedup = 0.0;
  std::size_t distinct = 0;
  std::size_t cache_hits = 0;
  bool bit_identical = true;
};

double timed_evals_per_sec(const engine::EvalEngine& eval,
                           const std::vector<engine::Genome>& genomes,
                           std::vector<moga::Evaluation>& out, std::size_t repeats) {
  eval.evaluate_batch(genomes, out);  // warm-up (first touch, page-in)
  const auto start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    eval.evaluate_batch(genomes, out);
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(genomes.size() * repeats) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode();
  const std::size_t batch_size = quick ? 64 : 256;
  const std::size_t repeats = quick ? 3 : 8;

  std::vector<double> duplicate_rates{0.0, 0.2, 0.5};
  bool simd_gate = false;
  bool shard_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duplicate-rate") == 0 && i + 1 < argc) {
      duplicate_rates = {std::atof(argv[i + 1])};
    }
    if (std::strcmp(argv[i], "--simd-gate") == 0) simd_gate = true;
    if (std::strcmp(argv[i], "--shard-gate") == 0) shard_gate = true;
  }

  const problems::IntegratorProblem problem(problems::chosen_spec());
  const auto genomes = make_genomes(problem, batch_size);

  std::vector<moga::Evaluation> reference(batch_size);
  std::vector<moga::Evaluation> out(batch_size);

  std::printf("EvalEngine throughput, %zu-genome batches of '%s' (%zu repeats)%s\n\n",
              batch_size, problem.name().c_str(), repeats, quick ? " [quick]" : "");
  std::printf("  threads  effective  evals/sec     speedup  bit-identical\n");

  std::vector<Row> rows;
  for (const std::size_t requested : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}, std::size_t{0}}) {
    const engine::EvalEngine eval(problem, requested);
    Row row;
    row.requested = requested;
    row.effective = eval.threads();
    row.evals_per_sec = timed_evals_per_sec(eval, genomes, out, repeats);
    if (requested == 1) {
      reference = out;
    } else {
      row.speedup = row.evals_per_sec / rows.front().evals_per_sec;
      row.bit_identical = identical(out, reference);
    }
    rows.push_back(row);
    std::printf("  %7zu  %9zu  %11.0f  %6.2fx  %s\n", row.requested, row.effective,
                row.evals_per_sec, row.speedup, row.bit_identical ? "yes" : "NO");
  }

  // --- scalar vs SIMD lane kernels (single worker thread) ---
  // IntegratorProblem implements engine::LaneEvaluator, so a Simd-mode
  // serial engine maps each batch onto SoA groups of preferred_lane_width()
  // genomes while the Scalar-mode engine evaluates item by item. The lane
  // kernels are op-for-op transliterations of the scalar expression trees,
  // so the outputs must match bit for bit on every build; trials are PAIRED
  // (scalar then SIMD back-to-back, acceptance on the best paired ratio) so
  // multiplicative scheduler noise cancels out of the speedup.
  const std::size_t simd_trials = quick ? 4 : 6;
  const std::size_t lane_width = problem.preferred_lane_width();
  const engine::EvalEngine scalar_serial(problem, 1);
  engine::EvalEngine simd_serial_engine(problem, 1);
  simd_serial_engine.set_batch_eval(engine::BatchEval::Simd);
  const engine::EvalEngine& simd_serial = simd_serial_engine;
  std::vector<moga::Evaluation> scalar_out(batch_size);
  std::vector<moga::Evaluation> simd_out(batch_size);

  double scalar_eps = 0.0;
  double simd_eps = 0.0;
  double simd_speedup = 0.0;
  for (std::size_t t = 0; t < simd_trials; ++t) {
    const double p = timed_evals_per_sec(scalar_serial, genomes, scalar_out, repeats);
    const double s = timed_evals_per_sec(simd_serial, genomes, simd_out, repeats);
    scalar_eps = std::max(scalar_eps, p);
    simd_eps = std::max(simd_eps, s);
    simd_speedup = std::max(simd_speedup, s / p);
  }
  const bool simd_identical = identical(simd_out, scalar_out);
  // The gate is meaningless if the lane path never actually engaged.
  const std::uint64_t simd_lane_groups = simd_serial.lane_groups();
  const bool simd_ok = simd_identical && simd_lane_groups > 0 &&
                       (!simd_gate || simd_speedup >= 4.0);
  std::printf("\nscalar vs SIMD (1 thread, lane width %zu): %.0f -> %.0f evals/sec "
              "(%.2fx, gate >= 4x %s, lane groups %llu, bit-identical %s) -> %s\n",
              lane_width, scalar_eps, simd_eps, simd_speedup,
              simd_gate ? "ENFORCED" : "advisory",
              static_cast<unsigned long long>(simd_lane_groups),
              simd_identical ? "yes" : "NO", simd_ok ? "ok" : "FAIL");

  // --- dedup cache vs duplicate rate (serial engine: isolates the cache) ---
  std::printf(
      "\n  dup-rate  no-cache e/s   cached e/s   speedup  distinct  hits  bit-identical\n");
  std::vector<CacheRow> cache_rows;
  for (const double rate : duplicate_rates) {
    // Batch 0 is warm-up only (page-in, first-touch); batches 1..repeats
    // are timed. Distinct-across-batches genomes keep the warm-up from
    // pre-filling the LRU with timed work.
    const auto batches = duplicated_batches(problem, repeats + 1, batch_size, rate);
    CacheRow row;
    row.rate = rate;
    const auto run_all = [&](const engine::EvalEngine& eval,
                             std::vector<std::vector<moga::Evaluation>>& outs) {
      eval.evaluate_batch(batches.front(), outs.front());  // warm-up
      const auto start = Clock::now();
      for (std::size_t b = 1; b < batches.size(); ++b) {
        eval.evaluate_batch(batches[b], outs[b]);
      }
      const std::chrono::duration<double> elapsed = Clock::now() - start;
      return static_cast<double>(batch_size * (batches.size() - 1)) / elapsed.count();
    };

    const engine::EvalEngine plain(problem, 1);
    std::vector<std::vector<moga::Evaluation>> plain_outs(
        batches.size(), std::vector<moga::Evaluation>(batch_size));
    row.nocache_evals_per_sec = run_all(plain, plain_outs);

    const engine::EvalEngine cached(problem, 1, nullptr, /*cache_capacity=*/batch_size);
    std::vector<std::vector<moga::Evaluation>> cached_outs(
        batches.size(), std::vector<moga::Evaluation>(batch_size));
    row.cache_evals_per_sec = run_all(cached, cached_outs);

    row.speedup = row.cache_evals_per_sec / row.nocache_evals_per_sec;
    row.distinct = cached.stats().evaluated;
    row.cache_hits = cached.stats().cache_hits();
    row.bit_identical = true;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      row.bit_identical = row.bit_identical && identical(cached_outs[b], plain_outs[b]);
    }
    cache_rows.push_back(row);
    std::printf("  %7.0f%%  %12.0f  %11.0f  %6.2fx  %8zu  %4zu  %s\n", rate * 100.0,
                row.nocache_evals_per_sec, row.cache_evals_per_sec, row.speedup,
                row.distinct, row.cache_hits, row.bit_identical ? "yes" : "NO");
  }

  // --- robustness-layer overhead (watchdog + retry backoff, no faults) ---
  // The crash-safety layer must be free when nothing goes wrong: a serial
  // engine with the eval watchdog armed (generous deadline) driving a
  // backoff-enabled GuardedProblem must stay within 1% of the plain
  // engine's throughput, bit-identically. Checkpoint rotation is off the
  // evaluation hot path entirely (one rename chain per snapshot cadence),
  // so the eval-side knobs are the whole overhead story. Best-of-N timing
  // damps scheduler noise on shared CI runners.
  // Trials are PAIRED — plain then robust back-to-back, acceptance on the
  // best paired ratio — so slow multiplicative noise (frequency scaling,
  // co-tenants) cancels instead of failing the 1% gate spuriously.
  const std::size_t overhead_trials = quick ? 4 : 6;
  const std::size_t overhead_repeats = repeats * 4;

  const engine::EvalEngine plain_serial(problem, 1);
  std::vector<moga::Evaluation> plain_out(batch_size);

  CancelToken watchdog_token;
  robust::GuardPolicy backoff_policy;
  backoff_policy.backoff_spin_base = 4096;
  robust::GuardedProblem guarded(
      std::shared_ptr<const moga::Problem>(std::shared_ptr<void>(), &problem),
      backoff_policy);
  const engine::EvalEngine robust_serial(
      guarded, 1, nullptr, 0, engine::EvalWatchdog{&watchdog_token, 3600.0});
  std::vector<moga::Evaluation> robust_out(batch_size);

  double plain_eps = 0.0;
  double robust_eps = 0.0;
  double robust_ratio = 0.0;
  for (std::size_t t = 0; t < overhead_trials; ++t) {
    const double p =
        timed_evals_per_sec(plain_serial, genomes, plain_out, overhead_repeats);
    const double r =
        timed_evals_per_sec(robust_serial, genomes, robust_out, overhead_repeats);
    plain_eps = std::max(plain_eps, p);
    robust_eps = std::max(robust_eps, r);
    robust_ratio = std::max(robust_ratio, r / p);
  }
  const bool robust_identical = identical(robust_out, plain_out);
  const bool robust_ok = robust_ratio >= 0.99 && robust_identical &&
                         guarded.report().total_faults() == 0;
  std::printf("\nrobustness overhead: %.0f -> %.0f evals/sec (ratio %.3f, "
              "required >= 0.99, faults %zu) -> %s\n",
              plain_eps, robust_eps, robust_ratio,
              guarded.report().total_faults(), robust_ok ? "ok" : "FAIL");

  // --- sharded exploration scale-out (4 worker shards vs 1) ---
  // A real island workload through shard::run_sharded, thread mode. Both
  // legs run the SAME settings; only the shard count differs, so the wide
  // leg must land on the identical front and eval totals — determinism and
  // scale-out are measured together. Trials are PAIRED (1-shard then
  // 4-shard back-to-back, acceptance on the best paired ratio) like the
  // SIMD and robustness sections.
  const std::size_t shard_workers = 4;
  const std::size_t shard_trials = quick ? 2 : 3;
  expt::RunSettings shard_base;
  shard_base.algo = expt::Algo::Island;
  shard_base.spec = problems::chosen_spec();
  shard_base.population = 64;
  shard_base.islands = 8;
  shard_base.migration_interval = 15;
  shard_base.generations = quick ? 60 : 150;
  shard_base.checkpoint_every = shard_base.generations;  // no mid-run snapshots
  shard_base.seed = 9;
  shard_base.threads = 1;  // per-shard eval threads; shards ARE the parallelism

  const auto run_shards = [&problem, &shard_base](std::size_t shards,
                                                  const char* dir) {
    expt::RunSettings s = shard_base;
    s.shards = shards;
    s.shard_dir = dir;
    shard::ShardOptions options;  // thread mode
    options.fsync = false;
    const auto start = Clock::now();
    expt::RunOutcome outcome = shard::run_sharded(problem, s, options);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    return std::make_pair(std::move(outcome), elapsed.count());
  };
  const auto same_outcome = [](const expt::RunOutcome& a, const expt::RunOutcome& b) {
    if (a.evaluations != b.evaluations) return false;
    if (a.front.size() != b.front.size()) return false;
    for (std::size_t i = 0; i < a.front.size(); ++i) {
      if (a.front[i].power_w != b.front[i].power_w) return false;
      if (a.front[i].cload_f != b.front[i].cload_f) return false;
    }
    return true;
  };

  double shard_solo_seconds = 0.0;
  double shard_seconds = 0.0;
  double shard_speedup = 0.0;
  bool shard_identical = true;
  for (std::size_t t = 0; t < shard_trials; ++t) {
    const auto [solo_outcome, solo_s] = run_shards(1, "bench_shard_spool_1");
    const auto [wide_outcome, wide_s] = run_shards(shard_workers, "bench_shard_spool_4");
    shard_identical = shard_identical && same_outcome(solo_outcome, wide_outcome);
    if (t == 0 || solo_s < shard_solo_seconds) shard_solo_seconds = solo_s;
    if (t == 0 || wide_s < shard_seconds) shard_seconds = wide_s;
    shard_speedup = std::max(shard_speedup, solo_s / wide_s);
  }
  std::filesystem::remove_all("bench_shard_spool_1");
  std::filesystem::remove_all("bench_shard_spool_4");
  const bool shard_ok = shard_identical && (!shard_gate || shard_speedup >= 2.0);
  std::printf("\nsharded scale-out (%zu islands, %zu generations, %zu shards): "
              "%.3fs -> %.3fs (%.2fx, gate >= 2x %s, bit-identical %s) -> %s\n",
              shard_base.islands, shard_base.generations, shard_workers,
              shard_solo_seconds, shard_seconds, shard_speedup,
              shard_gate ? "ENFORCED" : "advisory",
              shard_identical ? "yes" : "NO", shard_ok ? "ok" : "FAIL");

  // Acceptance: at the 50% duplicate rate the cache must pay for itself
  // with at least 1.3x throughput (skipped when --duplicate-rate excluded
  // the 50% row).
  bool cache_ok = true;
  double cache_speedup_at_50 = 0.0;
  for (const CacheRow& row : cache_rows) {
    if (row.rate == 0.5) {
      cache_speedup_at_50 = row.speedup;
      cache_ok = row.speedup >= 1.3;
    }
  }
  if (cache_speedup_at_50 > 0.0) {
    std::printf("\ncache speedup at 50%% duplicates: %.2fx (required >= 1.3x) -> %s\n",
                cache_speedup_at_50, cache_ok ? "ok" : "FAIL");
  }

  std::ofstream json("BENCH_eval_throughput.json");
  json << "{\n"
       << "  \"bench\": \"eval_throughput\",\n"
       << "  \"problem\": \"" << problem.name() << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"batch_size\": " << batch_size << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"threads_requested\": " << row.requested
         << ", \"threads_effective\": " << row.effective
         << ", \"evals_per_sec\": " << row.evals_per_sec
         << ", \"speedup_vs_serial\": " << row.speedup
         << ", \"bit_identical\": " << (row.bit_identical ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"duplicate_rates\": [\n";
  for (std::size_t i = 0; i < cache_rows.size(); ++i) {
    const CacheRow& row = cache_rows[i];
    json << "    {\"rate\": " << row.rate
         << ", \"nocache_evals_per_sec\": " << row.nocache_evals_per_sec
         << ", \"cache_evals_per_sec\": " << row.cache_evals_per_sec
         << ", \"speedup\": " << row.speedup << ", \"distinct\": " << row.distinct
         << ", \"cache_hits\": " << row.cache_hits
         << ", \"bit_identical\": " << (row.bit_identical ? "true" : "false") << "}"
         << (i + 1 < cache_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"simd_lane_width\": " << lane_width << ",\n"
       << "  \"simd_scalar_evals_per_sec\": " << scalar_eps << ",\n"
       << "  \"simd_evals_per_sec\": " << simd_eps << ",\n"
       << "  \"simd_speedup\": " << simd_speedup << ",\n"
       << "  \"simd_lane_groups\": " << simd_lane_groups << ",\n"
       << "  \"simd_bit_identical\": " << (simd_identical ? "true" : "false") << ",\n"
       << "  \"simd_gate_enforced\": " << (simd_gate ? "true" : "false") << ",\n"
       << "  \"simd_ok\": " << (simd_ok ? "true" : "false") << ",\n"
       << "  \"cache_speedup_at_50\": " << cache_speedup_at_50 << ",\n"
       << "  \"cache_ok\": " << (cache_ok ? "true" : "false") << ",\n"
       << "  \"robust_overhead_ratio\": " << robust_ratio << ",\n"
       << "  \"robust_bit_identical\": " << (robust_identical ? "true" : "false")
       << ",\n"
       << "  \"robust_ok\": " << (robust_ok ? "true" : "false") << ",\n"
       << "  \"shard_workers\": " << shard_workers << ",\n"
       << "  \"shard_solo_seconds\": " << shard_solo_seconds << ",\n"
       << "  \"shard_seconds\": " << shard_seconds << ",\n"
       << "  \"shard_speedup\": " << shard_speedup << ",\n"
       << "  \"shard_bit_identical\": " << (shard_identical ? "true" : "false")
       << ",\n"
       << "  \"shard_gate_enforced\": " << (shard_gate ? "true" : "false") << ",\n"
       << "  \"shard_ok\": " << (shard_ok ? "true" : "false") << "\n"
       << "}\n";
  std::printf("\nwrote BENCH_eval_throughput.json\n");

  bool all_identical = simd_identical && shard_identical;
  for (const Row& row : rows) all_identical = all_identical && row.bit_identical;
  for (const CacheRow& row : cache_rows) {
    all_identical = all_identical && row.bit_identical;
  }
  if (!all_identical) {
    std::printf("ERROR: a run diverged from its reference\n");
    return 1;
  }
  return (cache_ok && robust_ok && simd_ok && shard_ok) ? 0 : 1;
}
