// §5 runtime overhead — "SACGA and MESACGA [take], on an average, 18% more
// computational time compared to NSGA-II, due to additional overheads of
// these algorithms". Measured with google-benchmark over fixed-budget runs
// on the chosen specification.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace anadex;

constexpr std::size_t kGenerations = 120;

const problems::IntegratorProblem& shared_problem() {
  static const problems::IntegratorProblem problem(problems::chosen_spec());
  return problem;
}

void run_algo(benchmark::State& state, expt::Algo algo) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto settings = bench::chosen_settings(algo, kGenerations);
    settings.seed = seed++;
    const auto outcome = expt::run(shared_problem(), settings);
    benchmark::DoNotOptimize(outcome.front_area);
    state.counters["evals"] = static_cast<double>(outcome.evaluations);
  }
}

void BM_TPG(benchmark::State& state) { run_algo(state, expt::Algo::TPG); }
void BM_SACGA(benchmark::State& state) { run_algo(state, expt::Algo::SACGA); }
void BM_MESACGA(benchmark::State& state) { run_algo(state, expt::Algo::MESACGA); }

BENCHMARK(BM_TPG)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_SACGA)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_MESACGA)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n=== runtime overhead vs NSGA-II (paper: ~18% for SACGA/MESACGA) ===\n"
            << "Each benchmark runs a full " << kGenerations
            << "-generation optimization; compare the per-iteration times of\n"
            << "BM_SACGA / BM_MESACGA against BM_TPG to obtain the overhead.\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
