// Ablation: how much does the ANNEALED mixing actually buy?
//
// Compares, at the paper's 800-iteration budget:
//   * SACGA with the annealed participation schedule (the paper's method);
//   * pure local competition (participation 0 — §4.3's LocalOnly GA);
//   * pure global competition inside the partitioned engine (participation 1);
//   * fixed 25% participation (a non-annealed middle ground);
//   * MESACGA with continuous vs per-phase-restarted annealing (the two
//     readings of §4.5 discussed in DESIGN.md).
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "sacga/mesacga.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Ablation A",
                     "Participation-schedule ablation at 800 iterations "
                     "(mean front-area over 3 seeds, lower better)");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  constexpr int kSeeds = 3;

  // The fixed-probability variants reuse the SACGA engine through the
  // schedule shape: implemented by running the evolver pieces directly.
  struct Row {
    const char* label;
    double mean_area = 0.0;
    double mean_span = 0.0;
  };
  std::vector<Row> rows;

  auto run_mean = [&](expt::Algo algo, auto tweak) {
    Row row{};
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto settings = bench::chosen_settings(algo, bench::kPaperBudget);
      settings.seed = static_cast<std::uint64_t>(seed);
      tweak(settings);
      const auto outcome = expt::run(problem, settings);
      row.mean_area += outcome.front_area / kSeeds;
      row.mean_span += outcome.load_span_pf / kSeeds;
    }
    return row;
  };

  Row sacga_row = run_mean(expt::Algo::SACGA, [](auto&) {});
  sacga_row.label = "SACGA (annealed)";
  rows.push_back(sacga_row);

  Row local_row = run_mean(expt::Algo::LocalOnly, [](auto&) {});
  local_row.label = "LocalOnly (prob=0)";
  rows.push_back(local_row);

  Row tpg_row = run_mean(expt::Algo::TPG, [](auto&) {});
  tpg_row.label = "Pure global (NSGA-II)";
  rows.push_back(tpg_row);

  Row mesacga_row = run_mean(expt::Algo::MESACGA, [](auto&) {});
  mesacga_row.label = "MESACGA continuous-anneal";
  rows.push_back(mesacga_row);

  // Per-phase annealing restart needs the low-level API.
  {
    Row row{};
    for (int seed = 1; seed <= kSeeds; ++seed) {
      sacga::MesacgaParams params;
      params.population_size = 100;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      params.total_budget = bench::scaled(bench::kPaperBudget);
      params.phase1_max_generations =
          std::min<std::size_t>(200, std::max<std::size_t>(params.total_budget / 4, 1));
      params.continuous_annealing = false;
      params.seed = static_cast<std::uint64_t>(seed);
      const auto result = sacga::run_mesacga(problem, params);
      const auto front = expt::to_front_samples(result.front);
      row.mean_area += expt::front_area_of(front) / kSeeds;
      double lo = 1.0;
      double hi = 0.0;
      for (const auto& s : front) {
        lo = std::min(lo, s.cload_f * 1e12);
        hi = std::max(hi, s.cload_f * 1e12);
      }
      row.mean_span += (front.empty() ? 0.0 : hi - lo) / kSeeds;
    }
    row.label = "MESACGA per-phase-anneal";
    rows.push_back(row);
  }

  std::cout << '\n';
  for (const auto& row : rows) {
    std::cout << "  " << row.label << ": front_area=" << row.mean_area
              << "  load_span=" << row.mean_span << " pF\n";
  }

  expt::print_paper_vs_measured(
      std::cout, "annealed mixing beats both pure modes (§4.4 motivation)",
      "local-only converges too slowly, pure global loses diversity",
      "compare SACGA's metric against LocalOnly and NSGA-II above");
  expt::print_paper_vs_measured(
      std::cout, "MESACGA annealing reading (DESIGN.md §5b)",
      "(not specified in the paper)",
      "continuous vs per-phase restart measured above");
  return 0;
}
