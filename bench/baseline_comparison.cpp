// Extension bench — the alternatives the paper cites, head-to-head.
//
// §4.1: "A known method of diversity preservation is parallel population GA
// with inter-population migration controlled in a tribe or island based
// framework... However, in this work, we try to establish that this
// objective can be accomplished by a simple modification in the traditional
// single-population GA." §1 likewise cites the weighted-sum scalarization.
// This bench pits SACGA/MESACGA against both alternatives at an equal
// evaluation budget on the chosen specification.
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Baselines",
                     "SACGA/MESACGA vs island-model GA vs weighted-sum "
                     "scalarization (equal budget, mean of 3 seeds)");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  constexpr int kSeeds = 3;

  struct Row {
    expt::Algo algo;
    double area = 0.0;
    double span = 0.0;
    double cluster = 0.0;
  };
  std::vector<Row> rows{{expt::Algo::SACGA}, {expt::Algo::MESACGA},
                        {expt::Algo::Island}, {expt::Algo::WeightedSum},
                        {expt::Algo::TPG}};

  for (auto& row : rows) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto settings = bench::chosen_settings(row.algo, bench::kPaperBudget);
      settings.seed = static_cast<std::uint64_t>(seed);
      const auto outcome = expt::run(problem, settings);
      row.area += outcome.front_area / kSeeds;
      row.span += outcome.load_span_pf / kSeeds;
      row.cluster += outcome.clustering_4to5 / kSeeds;
    }
    std::cout << "  " << expt::algo_name(row.algo) << ": front_area=" << row.area
              << "  load_span=" << row.span << " pF  cluster[4,5]=" << row.cluster
              << "\n";
  }

  const double sacga_area = rows[0].area;
  const double island_area = rows[2].area;
  const double wsum_area = rows[3].area;

  expt::print_paper_vs_measured(
      std::cout, "single-population SACGA vs island framework (§4.1 claim)",
      "the simple single-population modification suffices",
      "SACGA " + std::to_string(sacga_area) + " vs IslandGA " +
          std::to_string(island_area) +
          (sacga_area <= island_area ? "  [SACGA at least as good]"
                                     : "  [island ahead on this problem]"));
  expt::print_paper_vs_measured(
      std::cout, "population methods vs weighted-sum scalarization (§1)",
      "scalarized single-objective sweeps are weaker for front generation",
      "WeightedSum " + std::to_string(wsum_area) + " vs SACGA " +
          std::to_string(sacga_area));
  return 0;
}
