// Figure 10 — "Progress of Pareto Front across various SACGA phases of
// MESACGA": the quality metric at the end of each of the 7 phases, for
// span = 50, 100 and 150. The paper: results improve monotonically across
// phases, and larger spans produce better final fronts.
#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/series.hpp"

int main() {
  using namespace anadex;
  std::cout.setf(std::ios::unitbuf);

  expt::print_banner(std::cout, "Figure 10",
                     "Front quality at the end of each MESACGA phase "
                     "(span = 50 / 100 / 150)");

  const problems::IntegratorProblem problem(problems::chosen_spec());
  Series series("front-area metric per phase",
                {"phase", "span50", "span100", "span150"});
  std::vector<std::vector<double>> columns;
  std::vector<PlotSeries> plots;
  double final_span50 = 0.0;
  double final_span150 = 0.0;

  const char glyphs[] = {'5', '1', '9'};
  int glyph_idx = 0;
  for (std::size_t span : {50u, 100u, 150u}) {
    auto settings = bench::chosen_settings(expt::Algo::MESACGA, 0);
    settings.span = bench::scaled(span);
    settings.generations = 0;  // span drives the budget here
    const auto outcome = expt::run(problem, settings);
    PlotSeries plot;
    plot.label = "span=" + std::to_string(bench::scaled(span));
    plot.glyph = glyphs[glyph_idx++];
    std::vector<double> column;
    for (const auto& phase : outcome.phases) {
      column.push_back(phase.front_area);
      plot.x.push_back(static_cast<double>(phase.phase));
      plot.y.push_back(phase.front_area);
    }
    columns.push_back(column);
    plots.push_back(std::move(plot));
    if (span == 50) final_span50 = column.back();
    if (span == 150) final_span150 = column.back();
    std::cout << "  span=" << bench::scaled(span) << ": final front_area "
              << column.back() << "\n";
  }

  for (std::size_t phase = 0; phase < columns[0].size(); ++phase) {
    series.add_row({static_cast<double>(phase + 1), columns[0][phase],
                    columns[1][phase], columns[2][phase]});
  }

  PlotOptions options;
  options.x_label = "Phases of SACGA";
  options.y_label = "front-area metric (0.1 mW*pF, lower better)";
  std::cout << render_scatter(plots, options);
  series.write_table(std::cout);

  expt::print_paper_vs_measured(
      std::cout, "metric improves phase over phase",
      "monotone decrease across the 7 phases (all spans)",
      "see the per-phase table above");
  expt::print_paper_vs_measured(
      std::cout, "larger span is better (paper: results improve with span)",
      "span 150 best, span 50 worst",
      "span150 " + std::to_string(final_span150) + " vs span50 " +
          std::to_string(final_span50) +
          (final_span150 < final_span50 ? "  [holds]" : "  [DEVIATES]"));
  return 0;
}
