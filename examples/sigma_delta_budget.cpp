// System-level payoff of design-surface diversity (the paper's §1
// motivation): budget a fourth-order sigma-delta modulator from integrator
// Pareto surfaces and show that the clustered NSGA-II front wastes power
// compared to the diverse MESACGA front.
//
//   $ ./sigma_delta_budget [generations]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "sysdes/sigma_delta.hpp"

namespace {

std::vector<anadex::sysdes::FrontPoint> to_points(
    const std::vector<anadex::expt::FrontSample>& front) {
  std::vector<anadex::sysdes::FrontPoint> points;
  points.reserve(front.size());
  for (const auto& s : front) points.push_back({s.power_w, s.cload_f});
  return points;
}

void report(const char* label, const anadex::sysdes::BudgetResult& budget) {
  std::cout << label << ":\n";
  for (const auto& stage : budget.stages) {
    std::cout << "  stage " << stage.stage + 1 << " (load "
              << stage.required_load * 1e12 << " pF): ";
    if (stage.pick) {
      std::cout << "design at " << stage.pick->cload * 1e12 << " pF, "
                << stage.pick->power * 1e3 << " mW\n";
    } else {
      std::cout << "NO COVERING DESIGN\n";
    }
  }
  if (budget.feasible) {
    std::cout << "  total modulator analog power: " << budget.total_power * 1e3
              << " mW\n\n";
  } else {
    std::cout << "  budget infeasible with this front\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anadex;
  const std::size_t generations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  std::cout << std::fixed << std::setprecision(3);

  sysdes::ModulatorSpec mod;  // 4th order, OSR 128, 1-bit, 90 dB target
  std::cout << "4th-order sigma-delta: ideal peak SQNR at OSR " << mod.osr << " = "
            << sysdes::ideal_sqnr_db(mod) << " dB\n";
  const auto loads = sysdes::default_stage_loads(mod);
  const auto dr_reqs = sysdes::stage_dr_requirements(mod);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::cout << "  stage " << i + 1 << ": drive " << loads[i] * 1e12
              << " pF, DR requirement " << dr_reqs[i] << " dB\n";
  }
  std::cout << '\n';

  const problems::IntegratorProblem problem(problems::chosen_spec());

  expt::RunSettings settings;
  settings.spec = problems::chosen_spec();
  settings.generations = generations;
  settings.seed = 5;

  settings.algo = expt::Algo::MESACGA;
  const auto diverse = expt::run(problem, settings);
  settings.algo = expt::Algo::TPG;
  const auto clustered = expt::run(problem, settings);

  std::cout << "MESACGA front: " << diverse.front.size() << " designs over "
            << diverse.load_span_pf << " pF | TPG front: " << clustered.front.size()
            << " designs over " << clustered.load_span_pf << " pF\n\n";

  const auto diverse_budget = sysdes::budget_from_front(to_points(diverse.front), loads);
  const auto clustered_budget =
      sysdes::budget_from_front(to_points(clustered.front), loads);

  report("budget from the DIVERSE (MESACGA) surface", diverse_budget);
  report("budget from the CLUSTERED (NSGA-II) front", clustered_budget);

  if (diverse_budget.feasible && clustered_budget.feasible) {
    const double saving =
        (clustered_budget.total_power - diverse_budget.total_power) /
        clustered_budget.total_power * 100.0;
    std::cout << "power saved by the diverse design surface: " << saving << " %\n";
  }
  return 0;
}
