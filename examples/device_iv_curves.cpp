// Device-model characterization: print the transfer / output / gm-ID
// charts of the synthetic 0.18 um process, including corner spreads — the
// plots a designer inspects before trusting the optimizer built on top.
//
//   $ ./device_iv_curves [W_um] [L_um]
#include <cstdlib>
#include <iostream>

#include "common/ascii_plot.hpp"
#include "device/characterize.hpp"

int main(int argc, char** argv) {
  using namespace anadex;
  device::Geometry geom{10e-6, 0.5e-6};
  if (argc > 1) geom.w = std::strtod(argv[1], nullptr) * 1e-6;
  if (argc > 2) geom.l = std::strtod(argv[2], nullptr) * 1e-6;

  const auto proc = device::Process::typical();
  std::cout << "NMOS W/L = " << geom.w * 1e6 << "u/" << geom.l * 1e6 << "u on the "
            << "synthetic 0.18um process\n\n";

  // Transfer characteristic with corner spread.
  const auto corners =
      device::corner_transfer_curves(proc, device::Type::NMOS, geom, 1.0,
                                     device::Sweep{0.0, 1.8, 37});
  std::vector<PlotSeries> plots;
  const char* labels[] = {"TT", "FF", "SS", "FS", "SF"};
  const char glyphs[] = {'t', 'f', 's', 'x', 'o'};
  for (int c = 0; c < 5; ++c) {
    PlotSeries series;
    series.label = labels[c];
    series.glyph = glyphs[c];
    for (std::size_t r = 0; r < corners.num_rows(); ++r) {
      series.x.push_back(corners.at(r, 0));
      series.y.push_back(corners.at(r, static_cast<std::size_t>(c) + 1) * 1e3);
    }
    plots.push_back(std::move(series));
  }
  PlotOptions options;
  options.title = "ID vs VGS across corners (VDS = 1.0 V)";
  options.x_label = "VGS (V)";
  options.y_label = "ID (mA)";
  std::cout << render_scatter(plots, options) << '\n';

  // gm/ID design chart.
  const auto profile =
      device::gm_over_id_profile(proc.nmos, geom, 1.0, device::Sweep{0.5, 1.8, 27});
  PlotSeries gmid;
  gmid.label = "gm/ID";
  for (std::size_t r = 0; r < profile.num_rows(); ++r) {
    gmid.x.push_back(profile.at(r, 0));
    gmid.y.push_back(profile.at(r, 1));
  }
  PlotOptions gmid_options;
  gmid_options.title = "gm/ID vs overdrive";
  gmid_options.x_label = "Vov (V)";
  gmid_options.y_label = "gm/ID (1/V)";
  std::cout << render_scatter({gmid}, gmid_options) << '\n';

  device::output_curves(proc.nmos, geom, std::vector<double>{0.7, 0.9, 1.1},
                        device::Sweep{0.0, 1.8, 10})
      .write_table(std::cout);
  return 0;
}
