// Quickstart: minimize a classic two-objective test problem (ZDT1) with
// NSGA-II, then with SACGA, and compare front quality.
//
//   $ ./quickstart
//
// Shows the three core API pieces:
//   1. a moga::Problem (here from the built-in analytic suite);
//   2. an optimizer run (moga::run_nsga2 / sacga::run_sacga);
//   3. front inspection and quality metrics.
#include <iostream>

#include "moga/hypervolume.hpp"
#include "moga/metrics.hpp"
#include "moga/nsga2.hpp"
#include "problems/analytic.hpp"
#include "sacga/sacga.hpp"

int main() {
  using namespace anadex;

  const auto problem = problems::make_zdt1(/*variables=*/12);
  std::cout << "problem: " << problem->name() << " (" << problem->num_variables()
            << " variables, " << problem->num_objectives() << " objectives)\n\n";

  // --- 1. Plain NSGA-II -----------------------------------------------------
  moga::Nsga2Params nsga2;
  nsga2.population_size = 100;
  nsga2.generations = 250;
  nsga2.seed = 42;
  const auto baseline = moga::run_nsga2(*problem, nsga2);

  // --- 2. SACGA: partition objective f1's range and anneal the mixing -------
  sacga::SacgaParams params;
  params.population_size = 100;
  params.partitions = 8;
  params.axis_objective = 0;  // partition along f1 in [0, 1]
  params.axis_lo = 0.0;
  params.axis_hi = 1.0;
  params.phase1_max_generations = 50;
  params.span = 200;
  params.seed = 42;
  const auto sacga_result = run_sacga(*problem, params);

  // --- 3. Compare the fronts -------------------------------------------------
  const std::vector<double> reference{1.2, 1.2};
  const double hv_nsga2 =
      moga::hypervolume(moga::objectives_of(baseline.front), reference);
  const double hv_sacga =
      moga::hypervolume(moga::objectives_of(sacga_result.front), reference);

  std::cout << "NSGA-II : " << baseline.front.size() << " front points, "
            << baseline.evaluations << " evaluations, hypervolume " << hv_nsga2 << "\n";
  std::cout << "SACGA   : " << sacga_result.front.size() << " front points, "
            << sacga_result.evaluations << " evaluations, hypervolume " << hv_sacga
            << " (phase I took " << sacga_result.phase1_generations
            << " generations)\n\n";

  std::cout << "first few SACGA front points (f1, f2):\n";
  auto front = sacga_result.front;
  std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
    return a.eval.objectives[0] < b.eval.objectives[0];
  });
  for (std::size_t i = 0; i < front.size(); i += std::max<std::size_t>(front.size() / 8, 1)) {
    std::cout << "  (" << front[i].eval.objectives[0] << ", "
              << front[i].eval.objectives[1] << ")\n";
  }
  return 0;
}
