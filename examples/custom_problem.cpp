// Bring your own circuit: how to wrap a custom sizing task as a
// moga::Problem and explore it with SACGA.
//
// The example sizes a first-order active-RC anti-aliasing filter driving a
// capacitive load: minimize power, maximize drivable load (the same
// objective structure as the paper), under cutoff-accuracy and noise
// constraints. The "circuit model" is a handful of closed-form equations —
// exactly the shape of evaluator this library is designed around.
#include <cmath>
#include <iostream>

#include "common/math.hpp"
#include "moga/problem.hpp"
#include "sacga/sacga.hpp"

namespace {

using namespace anadex;

/// Design vector: [ gm (A/V), R (ohm), C (F), cload (F) ].
class RcFilterProblem final : public moga::Problem {
 public:
  static constexpr double kLoadMax = 10e-12;
  static constexpr double kTargetCutoffHz = 1e6;

  std::string name() const override { return "ActiveRcFilter"; }
  std::size_t num_variables() const override { return 4; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 3; }

  std::vector<moga::VariableBound> bounds() const override {
    return {{10e-6, 5e-3},      // transconductor gm
            {1e3, 1e6},         // feedback resistor
            {0.1e-12, 50e-12},  // filter capacitor
            {0.1e-12, kLoadMax}};
  }

  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    const double gm = genes[0];
    const double r = genes[1];
    const double c = genes[2];
    const double cload = genes[3];

    // Power: class-A transconductor biased for gm at 150 mV overdrive.
    const double supply = 1.8;
    const double power = supply * gm * 0.15;

    // Cutoff set by RC; finite gm shifts it: f_c = 1/(2 pi R C (1 + 1/(gm R))).
    const double pi = 3.14159265358979323846;
    const double f_c = 1.0 / (2.0 * pi * r * c * (1.0 + 1.0 / (gm * r)));
    const double cutoff_error = std::abs(f_c - kTargetCutoffHz) / kTargetCutoffHz;

    // The transconductor must drive C + Cload at 10x the cutoff.
    const double slew_needed = 2.0 * pi * 10.0 * kTargetCutoffHz * 0.5 * (c + cload);
    const double drive = gm * 0.15;  // available class-A current
    const double drive_margin = (drive - slew_needed) / std::max(slew_needed, 1e-12);

    // Output noise: kT/C of the filter cap plus R thermal in the band.
    const double vn2 = kBoltzmann * 300.0 / c + 4.0 * kBoltzmann * 300.0 * r * f_c;
    const double noise_budget = sq(50e-6);  // 50 uV rms

    out.objectives = {power, kLoadMax - cload};
    out.violations = {
        std::max(0.0, cutoff_error - 0.05),             // +-5 % cutoff accuracy
        std::max(0.0, -drive_margin),                    // enough drive current
        std::max(0.0, (vn2 - noise_budget) / noise_budget),
    };
  }
};

}  // namespace

int main() {
  const RcFilterProblem problem;
  std::cout << "exploring " << problem.name() << " with SACGA...\n";

  sacga::SacgaParams params;
  params.population_size = 80;
  params.partitions = 8;
  params.axis_objective = 1;  // partition the load axis, like the paper
  params.axis_lo = 0.0;
  params.axis_hi = RcFilterProblem::kLoadMax;
  params.phase1_max_generations = 100;
  params.span = 400;
  params.seed = 123;

  const auto result = run_sacga(problem, params);
  std::cout << "phase I took " << result.phase1_generations << " generations; "
            << result.discarded_partitions << " partitions discarded; front has "
            << result.front.size() << " designs\n\n";

  auto front = result.front;
  std::sort(front.begin(), front.end(), [](const auto& a, const auto& b) {
    return a.eval.objectives[1] > b.eval.objectives[1];
  });
  std::cout << "  cload (pF)   power (uW)   gm (uS)\n";
  for (std::size_t i = 0; i < front.size();
       i += std::max<std::size_t>(front.size() / 10, 1)) {
    const auto& ind = front[i];
    std::cout << "  " << (RcFilterProblem::kLoadMax - ind.eval.objectives[1]) * 1e12
              << "\t" << ind.eval.objectives[0] * 1e6 << "\t" << ind.genes[0] * 1e6
              << "\n";
  }
  return 0;
}
