// Design-space exploration of the CDS switched-capacitor integrator — the
// paper's headline flow. Runs MESACGA against the paper's chosen
// specification and prints the power-vs-load Pareto surface plus a full
// datasheet of one selected design.
//
//   $ ./integrator_exploration [generations]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "expt/figures.hpp"
#include "sacga/mesacga.hpp"
#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

int main(int argc, char** argv) {
  using namespace anadex;
  const std::size_t generations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

  const scint::Spec spec = problems::chosen_spec();
  std::cout << "specification '" << spec.name << "': DR >= " << spec.dr_min_db
            << " dB, OR >= " << spec.or_min << " V, ST <= " << spec.st_max * 1e9
            << " ns, SE <= " << spec.se_max << ", robustness >= " << spec.robustness_min
            << "\n\n";

  const problems::IntegratorProblem problem(spec);
  expt::RunSettings settings;
  settings.algo = expt::Algo::MESACGA;
  settings.spec = spec;
  settings.generations = generations;
  settings.seed = 7;
  const auto outcome = expt::run(problem, settings);

  expt::print_fronts(std::cout, {{"MESACGA design surface", outcome.front}});
  expt::print_outcome_summary(std::cout, "MESACGA", outcome);

  if (outcome.front.empty()) {
    std::cout << "no feasible designs found — increase the budget\n";
    return 1;
  }

  // Datasheet of the cheapest design able to drive at least 2 pF. The
  // expt runner reports objective values only; for genomes use the
  // algorithm-level API directly:
  std::cout << "\nselected design near C_load = 2 pF:\n";
  sacga::MesacgaParams params;
  params.population_size = 100;
  params.axis_objective = 1;
  params.axis_lo = 0.0;
  params.axis_hi = problems::kLoadMax;
  params.total_budget = generations;
  params.seed = 7;
  const auto result = sacga::run_mesacga(problem, params);
  const moga::Individual* best = nullptr;
  for (const auto& ind : result.front) {
    const double cload = problems::kLoadMax - ind.eval.objectives[1];
    if (cload < 2e-12) continue;
    if (best == nullptr || ind.eval.objectives[0] < best->eval.objectives[0]) {
      best = &ind;
    }
  }
  if (best != nullptr) {
    const auto design = problems::IntegratorProblem::decode(best->genes);
    const auto perf = problem.typical_performance(design);
    const double um = 1e6;
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "  M1 " << design.opamp.m1.w * um << "/" << design.opamp.m1.l * um
              << "  M3 " << design.opamp.m3.w * um << "/" << design.opamp.m3.l * um
              << "  M5 " << design.opamp.m5.w * um << "/" << design.opamp.m5.l * um
              << "  M6 " << design.opamp.m6.w * um << "/" << design.opamp.m6.l * um
              << "  M7 " << design.opamp.m7.w * um << "/" << design.opamp.m7.l * um
              << "  (um/um)\n";
    std::cout << "  Ibias " << design.opamp.ibias * 1e6 << " uA, Cc "
              << design.opamp.cc * 1e12 << " pF, Cs " << design.cs * 1e12 << " pF, Coc "
              << design.coc * 1e12 << " pF, Cload " << design.cload * 1e12 << " pF\n";
    std::cout << "  power " << perf.power * 1e3 << " mW | DR " << perf.dynamic_range_db
              << " dB | OR " << perf.output_range << " V | ST "
              << perf.settling_time * 1e9 << " ns | SE " << std::scientific
              << perf.settling_error << std::fixed << " | PM "
              << perf.phase_margin_deg << " deg\n";
    std::cout << "  robustness " << problem.design_robustness(design) << " | f_u "
              << perf.unity_gain_hz / 1e6 << " MHz | beta " << perf.feedback_factor
              << "\n";
  }
  return 0;
}
